//! Exhaustive operator-define coverage: one hand-computed FLOP/memory check
//! per operator kind the analytical model supports (the §3.2.1 rules, op by
//! op). Each case builds a minimal single-op graph and compares against the
//! closed-form expectation.

use proof_core::{op_cost, CostEstimate, FlopTable};
use proof_ir::{attrs, AttrValue, Attributes, DType, Graph, GraphBuilder, OpKind, TensorId};

const T: FlopTable = FlopTable {
    mac: 2,
    add: 1,
    mul: 1,
    cmp: 1,
    div: 4,
    sqrt: 4,
    exp: 8,
    log: 8,
    erf: 8,
    tanh: 12,
    pow: 8,
};

/// Build a single-op graph over f32 inputs of the given shapes.
fn single_op(op: OpKind, attrs: Attributes, shapes: &[&[u64]]) -> (Graph, CostEstimate) {
    let mut b = GraphBuilder::new("op");
    let ins: Vec<TensorId> = shapes
        .iter()
        .enumerate()
        .map(|(i, dims)| b.input(&format!("in{i}"), dims, DType::F32))
        .collect();
    let outs = b.push_multi("node", op, attrs, &ins);
    for o in outs {
        b.output(o);
    }
    let g = b.finish();
    let c = op_cost(&g, 0, DType::F32, &T);
    (g, c)
}

fn fb(elems: u64) -> u64 {
    elems * 4 // f32 bytes
}

#[test]
fn unary_elementwise_flop_weights() {
    // (op, flops-per-element under table T)
    let cases: &[(OpKind, u64)] = &[
        (OpKind::Relu, T.cmp),
        (OpKind::Abs, T.cmp),
        (OpKind::Neg, T.cmp),
        (OpKind::LeakyRelu, T.cmp + T.mul),
        (OpKind::Clip, 2 * T.cmp),
        (OpKind::Sigmoid, T.exp + T.add + T.div),
        (OpKind::HardSigmoid, T.mul + T.add + 2 * T.cmp),
        (OpKind::HardSwish, T.mul + T.add + 2 * T.cmp + T.mul),
        (OpKind::Tanh, T.tanh),
        (OpKind::Erf, T.erf),
        (OpKind::Exp, T.exp),
        (OpKind::Log, T.log),
        (OpKind::Sqrt, T.sqrt),
        (OpKind::Reciprocal, T.div),
        (OpKind::Gelu, T.div + T.erf + T.add + 2 * T.mul),
        (OpKind::Softplus, T.exp + T.add + T.log),
    ];
    for &(op, per_elem) in cases {
        let (_, c) = single_op(op, Attributes::new(), &[&[2, 100]]);
        assert_eq!(c.flops, 200 * per_elem, "{op}");
        assert_eq!(c.input_bytes, fb(200), "{op}");
        assert_eq!(c.output_bytes, fb(200), "{op}");
        assert_eq!(c.weight_bytes, 0, "{op}");
    }
}

#[test]
fn binary_elementwise_flop_weights() {
    let cases: &[(OpKind, u64)] = &[
        (OpKind::Add, T.add),
        (OpKind::Sub, T.add),
        (OpKind::Mul, T.mul),
        (OpKind::Div, T.div),
        (OpKind::Pow, T.pow),
        (OpKind::Min, T.cmp),
        (OpKind::Max, T.cmp),
        (OpKind::Equal, T.cmp),
        (OpKind::Greater, T.cmp),
        (OpKind::Less, T.cmp),
    ];
    for &(op, per_elem) in cases {
        let (_, c) = single_op(op, Attributes::new(), &[&[4, 25], &[4, 25]]);
        assert_eq!(c.flops, 100 * per_elem, "{op}");
        assert_eq!(c.input_bytes, 2 * fb(100), "{op}");
        // comparisons emit bool (1 B/elem); arithmetic keeps f32
        let expect_out = if matches!(op, OpKind::Equal | OpKind::Greater | OpKind::Less) {
            100
        } else {
            fb(100)
        };
        assert_eq!(c.output_bytes, expect_out, "{op}");
    }
}

#[test]
fn where_reads_all_three_operands() {
    let mut b = GraphBuilder::new("w");
    let cond = b.input("cond", &[10], DType::Bool);
    let x = b.input("x", &[10], DType::F32);
    let y = b.input("y", &[10], DType::F32);
    let o = b.push("node", OpKind::Where, Attributes::new(), &[cond, x, y]);
    b.output(o);
    let g = b.finish();
    let c = op_cost(&g, 0, DType::F32, &T);
    assert_eq!(c.flops, 10 * T.cmp);
    assert_eq!(c.input_bytes, 10 /* bool */ + 2 * fb(10));
}

#[test]
fn softmax_and_reductions() {
    let (_, sm) = single_op(OpKind::Softmax, attrs! {"axis" => int (-1)}, &[&[8, 32]]);
    assert_eq!(sm.flops, 256 * (2 * T.cmp + T.add + T.exp + T.div));

    let (_, mean) = single_op(OpKind::ReduceMean, attrs! {"axes" => ints[-1]}, &[&[8, 32]]);
    assert_eq!(mean.flops, 256 * T.add + 8 * T.div);
    assert_eq!(mean.output_bytes, fb(8));

    let (_, sum) = single_op(OpKind::ReduceSum, attrs! {"axes" => ints[0]}, &[&[8, 32]]);
    assert_eq!(sum.flops, 256 * T.add);

    let (_, maxr) = single_op(OpKind::ReduceMax, attrs! {"axes" => ints[0]}, &[&[8, 32]]);
    assert_eq!(maxr.flops, 256 * T.cmp);

    let (_, am) = single_op(OpKind::ArgMax, attrs! {"axis" => int 1}, &[&[8, 32]]);
    assert_eq!(am.flops, 256 * T.cmp);
    assert_eq!(am.output_bytes, 8 * 8, "argmax emits i64 indices");
}

#[test]
fn pooling_rules() {
    let pool_attrs = attrs! {"kernel_shape" => ints[2, 2], "strides" => ints[2, 2]};
    let (_, mp) = single_op(OpKind::MaxPool, pool_attrs.clone(), &[&[1, 4, 8, 8]]);
    // out 4×4×4 elements × k²=4 compares
    assert_eq!(mp.flops, 64 * 4 * T.cmp);
    let (_, ap) = single_op(OpKind::AveragePool, pool_attrs, &[&[1, 4, 8, 8]]);
    assert_eq!(ap.flops, 64 * (4 * T.add + T.div));
    let (_, gap) = single_op(
        OpKind::GlobalAveragePool,
        Attributes::new(),
        &[&[1, 4, 8, 8]],
    );
    assert_eq!(gap.flops, 256 * T.add + 4 * T.div);
    assert_eq!(gap.output_bytes, fb(4));
}

#[test]
fn normalization_rules() {
    let mut b = GraphBuilder::new("n");
    let x = b.input("x", &[2, 8, 4, 4], DType::F32);
    let y = b.bn("bn", x);
    b.output(y);
    let g = b.finish();
    let c = op_cost(&g, 0, DType::F32, &T);
    // folded scale+shift: one MAC per element
    assert_eq!(c.flops, 256 * T.mac);
    assert_eq!(c.weight_bytes, 4 * fb(8));

    let mut b = GraphBuilder::new("ln");
    let x = b.input("x", &[4, 16], DType::F32);
    let y = b.layer_norm_fused("ln", x);
    b.output(y);
    let g = b.finish();
    let c = op_cost(&g, 0, DType::F32, &T);
    assert!(c.flops > 64 * 4, "several flops per element");
    assert_eq!(c.weight_bytes, 2 * fb(16));
}

#[test]
fn data_movement_is_zero_flop_full_traffic() {
    let cases: Vec<(OpKind, Attributes, Vec<u64>)> = vec![
        (OpKind::Transpose, attrs! {"perm" => ints[1, 0]}, vec![6, 4]),
        (OpKind::Concat, attrs! {"axis" => int 0}, vec![6, 4]),
        (OpKind::Pad, attrs! {"pads" => ints[1, 1, 1, 1]}, vec![6, 4]),
        (
            OpKind::Cast,
            Attributes::new().with_dtype("to", DType::F16),
            vec![6, 4],
        ),
        (OpKind::Tile, attrs! {"repeats" => ints[2, 2]}, vec![6, 4]),
        (
            OpKind::Expand,
            attrs! {"shape" => ints[3, 6, 4]},
            vec![6, 4],
        ),
    ];
    for (op, a, dims) in cases {
        let (_, c) = single_op(op, a, &[&dims]);
        assert_eq!(c.flops, 0, "{op}");
        assert!(c.input_bytes > 0, "{op}");
        assert!(c.output_bytes > 0, "{op}");
    }
}

#[test]
fn slice_reads_only_the_kept_range() {
    let (_, c) = single_op(
        OpKind::Slice,
        attrs! {"starts" => ints[0], "ends" => ints[2], "axes" => ints[0]},
        &[&[10, 4]],
    );
    assert_eq!(c.input_bytes, fb(8), "2 of 10 rows read");
    assert_eq!(c.output_bytes, fb(8));
    assert_eq!(c.flops, 0);
}

#[test]
fn resize_reads_source_once_writes_scaled_output() {
    let (_, c) = single_op(
        OpKind::Resize,
        Attributes::new()
            .with("scales", AttrValue::Floats(vec![1.0, 1.0, 2.0, 2.0]))
            .with_str("mode", "nearest"),
        &[&[1, 2, 4, 4]],
    );
    assert_eq!(c.input_bytes, fb(32));
    assert_eq!(c.output_bytes, fb(128));
}

#[test]
fn metadata_ops_cost_nothing() {
    for (op, a) in [
        (OpKind::Reshape, attrs! {"shape" => ints[4, 6]}),
        (OpKind::Flatten, attrs! {"axis" => int 1}),
        (OpKind::Squeeze, Attributes::new()),
        (OpKind::Identity, Attributes::new()),
        (OpKind::Dropout, Attributes::new()),
        (OpKind::Shape, Attributes::new()),
    ] {
        let dims: &[u64] = if op == OpKind::Squeeze {
            &[1, 6, 4]
        } else {
            &[6, 4]
        };
        let (_, c) = single_op(op, a, &[dims]);
        assert_eq!(c, CostEstimate::default(), "{op}");
    }
}

#[test]
fn unsqueeze_is_free_too() {
    let (_, c) = single_op(OpKind::Unsqueeze, attrs! {"axes" => ints[0]}, &[&[6, 4]]);
    assert_eq!(c, CostEstimate::default());
}

#[test]
fn split_moves_everything_once() {
    let (_, c) = single_op(
        OpKind::Split,
        attrs! {"axis" => int 0, "num_outputs" => int 2},
        &[&[8, 4]],
    );
    assert_eq!(c.flops, 0);
    assert_eq!(c.input_bytes, fb(32));
    assert_eq!(c.output_bytes, fb(32));
}

#[test]
fn gemm_variants() {
    // A[4,8] × Bᵀ[16,8] + bias[16]
    let mut b = GraphBuilder::new("g");
    let x = b.input("x", &[4, 8], DType::F32);
    let y = b.linear("fc", x, 16, true);
    b.output(y);
    let g = b.finish();
    let c = op_cost(&g, 0, DType::F32, &T);
    assert_eq!(c.flops, 4 * 16 * 8 * T.mac + 4 * 16 * T.add);
    assert_eq!(c.weight_bytes, fb(16 * 8 + 16));
}

#[test]
fn grouped_conv_spectrum() {
    // same tensor, groups ∈ {1, 2, 8}: flops scale as 1/groups
    let mut flops = Vec::new();
    for groups in [1u64, 2, 8] {
        let mut b = GraphBuilder::new("c");
        let x = b.input("x", &[1, 8, 10, 10], DType::F32);
        let y = b.conv("conv", x, 8, 3, 1, 1, groups, false);
        b.output(y);
        let g = b.finish();
        flops.push(op_cost(&g, 0, DType::F32, &T).flops);
    }
    assert_eq!(flops[0], 2 * flops[1]);
    assert_eq!(flops[1], 4 * flops[2]);
}

#[test]
fn constants_and_range_are_free() {
    let mut b = GraphBuilder::new("k");
    let c1 = b.push("const", OpKind::Constant, attrs! {"shape" => ints[4]}, &[]);
    let r = b.push("range", OpKind::Range, attrs! {"length" => int 7}, &[]);
    let _ = (c1, r);
    let sink = b.push(
        "cast",
        OpKind::Cast,
        Attributes::new().with_dtype("to", DType::F32),
        &[r],
    );
    b.output(sink);
    b.output(c1);
    let g = b.finish();
    assert_eq!(op_cost(&g, 0, DType::F32, &T), CostEstimate::default());
    assert_eq!(op_cost(&g, 1, DType::F32, &T), CostEstimate::default());
}

#[test]
fn precision_scaling_table() {
    // bytes per element across execution precisions, flops invariant
    let (g, _) = single_op(OpKind::Relu, Attributes::new(), &[&[100]]);
    for (d, bytes) in [(DType::F32, 4u64), (DType::F16, 2), (DType::I8, 1)] {
        let c = op_cost(&g, 0, d, &T);
        assert_eq!(c.input_bytes, 100 * bytes, "{d}");
        assert_eq!(c.flops, 100 * T.cmp, "{d}");
    }
}
