//! The coordinator's own HTTP surface: submit grids and watch the fleet.
//!
//! Endpoints:
//!
//! - `POST /grid` — run a grid spec to completion and return the merged
//!   artifact (synchronous: submit + wait; response bytes identical to
//!   the streaming path's finished result).
//! - `POST /grid/submit` (or `POST /grid?mode=async`) — validate the spec,
//!   mint a run id, and return `202 {run_id, shards}` immediately while a
//!   dedicated run thread executes the dispatch.
//! - `GET /grid/<id>/status[?since=<seq>]` — live per-shard progress:
//!   completed/pending/in-flight/rescheduled counts plus the run's
//!   seq-numbered progress events past the `since` cursor (all of them
//!   when omitted). `seq` in the reply is the cursor for the next poll.
//! - `GET /grid/<id>/result` — `202` while the run executes, `200` with
//!   the merged artifact when done (byte-identical to the synchronous
//!   path and `run_grid_local`), or the run's error (`400` for spec/merge
//!   rejections, `500` otherwise).
//! - `GET /grid/trace` — the merged cross-node Chrome-trace document of
//!   the most recent finished run (Perfetto-loadable).
//! - `GET /healthz` — coordinator liveness, version, uptime, node counts
//!   (`alive` always present, `running` true while any run is active),
//!   and the fleet-wide cache-tier summary aggregated from the nodes.
//! - `GET /nodes` — per-node registry snapshot: health state, in-flight,
//!   advertised worker count, shard-latency EWMA (`ewma_us`, once
//!   observed), and lifetime dispatch counters. Served from the shared
//!   [`FleetView`] the dispatcher republishes, so it answers mid-run.
//! - `GET /metrics[?format=prometheus]` — fleet counters; the Prometheus
//!   form federates every reachable node's own exposition under a
//!   `node="<addr>"` label, so one scrape covers the whole fleet. Both
//!   forms stay readable *during* a grid run (a CI smoke can watch
//!   `fleet_rescheduled` move while shards are still in flight).
//! - `GET /debug/events` — the coordinator's flight recorder: the bounded
//!   ring of scheduling and run-lifecycle events for post-mortems.
//!
//! Reuses `proof_serve::http` wholesale — same parser, same caps, same
//! single-request connections, same query-param handling.

use crate::coordinator::{metrics_json_from, Fleet, FleetError};
use crate::runs::{FleetView, RunLedger};
use proof_core::GridSpec;
use proof_obs::export::{federate_prometheus, prometheus_text};
use proof_obs::{FlightRecorder, MetricsRegistry};
use proof_serve::client::request_full_timeout;
use proof_serve::http::{
    query_has, query_param, read_request, write_response, write_response_typed, Request,
};
use serde_json::{Map, Value};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Transport bound for the coordinator's lock-free node scrapes
/// (federated metrics, healthz cache aggregation). Short on purpose: an
/// unreachable node should cost one bounded connect attempt, not stall
/// the scrape.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// Coordinator HTTP configuration.
#[derive(Debug, Clone)]
pub struct FleetServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
}

impl Default for FleetServerConfig {
    fn default() -> Self {
        FleetServerConfig {
            addr: "127.0.0.1:0".to_string(),
        }
    }
}

struct SharedFleet {
    /// The fleet, in a takeable slot: handlers borrow it briefly (submits
    /// are quick — the dispatch runs on a fleet-owned thread), and
    /// [`FleetServer::shutdown`] takes it out so the drain always runs, no
    /// matter how many handler threads still hold `Arc` clones of this
    /// struct. (An earlier build gated the drain on `Arc::try_unwrap` and
    /// silently leaked every embedded daemon whenever a connection was
    /// still open.)
    fleet: Mutex<Option<Fleet>>,
    /// Cloned out of the fleet so reads never touch the fleet slot: the
    /// metrics registry, flight recorder, run ledger, and the registry/
    /// trace view the dispatcher republishes mid-run.
    metrics: Arc<MetricsRegistry>,
    flight: Arc<FlightRecorder>,
    view: Arc<FleetView>,
    runs: Arc<RunLedger>,
    node_addrs: Vec<SocketAddr>,
    node_count: usize,
    started: Instant,
}

/// A running coordinator server. Owns the [`Fleet`] (and so its embedded
/// daemons).
pub struct FleetServer {
    addr: SocketAddr,
    shared: Arc<SharedFleet>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl FleetServer {
    pub fn start(fleet: Fleet, config: FleetServerConfig) -> std::io::Result<FleetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(SharedFleet {
            metrics: Arc::clone(fleet.metrics()),
            flight: Arc::clone(fleet.flight()),
            view: Arc::clone(fleet.view()),
            runs: Arc::clone(fleet.runs()),
            node_addrs: fleet.node_addrs(),
            node_count: fleet.node_addrs().len(),
            started: Instant::now(),
            fleet: Mutex::new(Some(fleet)),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    // thread-per-connection: run threads own the dispatch,
                    // so every endpoint answers concurrently
                    std::thread::spawn(move || handle(&shared, stream));
                }
            })
        };
        Ok(FleetServer {
            addr,
            shared,
            stop,
            acceptor: Some(acceptor),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, join the acceptor, then take the fleet out of its
    /// slot and shut it down — draining run threads and embedded daemons
    /// unconditionally, even while handler threads still hold shared
    /// clones (e.g. a slow request mid-read).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // wake the acceptor
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let fleet = self
            .shared
            .fleet
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(fleet) = fleet {
            fleet.shutdown();
        }
    }
}

fn error_body(msg: &str) -> String {
    let mut m = Map::new();
    m.insert("error".to_string(), Value::from(msg));
    Value::Object(m).to_string()
}

fn handle(shared: &SharedFleet, mut stream: TcpStream) {
    let request = match read_request(&mut stream) {
        Ok(Some(r)) => r,
        Ok(None) => return,
        Err(e) => {
            let _ = write_response(&mut stream, 400, &error_body(&e.to_string()));
            return;
        }
    };
    let (status, body, content_type) = route(shared, &request);
    let _ = write_response_typed(&mut stream, status, content_type, &body);
}

fn route(shared: &SharedFleet, req: &Request) -> (u16, String, &'static str) {
    const JSON: &str = "application/json";
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (200, healthz_body(shared), JSON),
        ("GET", ["metrics"]) if query_has(&req.query, "format", "prometheus") => (
            200,
            federated_prometheus_body(shared),
            "text/plain; version=0.0.4",
        ),
        ("GET", ["metrics"]) => (
            200,
            metrics_json_from(&shared.metrics, &shared.view.nodes()),
            JSON,
        ),
        ("GET", ["grid", "trace"]) => match shared.view.last_trace() {
            Some(trace) => (200, trace, JSON),
            None => (404, error_body("no grid run yet"), JSON),
        },
        ("GET", ["grid", id, "status"]) => grid_status(shared, id, &req.query),
        ("GET", ["grid", id, "result"]) => grid_result(shared, id),
        ("GET", ["debug", "events"]) => (200, shared.flight.to_json(), JSON),
        ("GET", ["nodes"]) => (
            200,
            Value::Array(shared.view.nodes().iter().map(|n| n.to_value()).collect()).to_string(),
            JSON,
        ),
        ("POST", ["grid"]) if query_has(&req.query, "mode", "async") => {
            post_grid_submit(shared, &req.body)
        }
        ("POST", ["grid", "submit"]) => post_grid_submit(shared, &req.body),
        ("POST", ["grid"]) => post_grid(shared, &req.body),
        ("GET" | "POST", _) => (404, error_body("no such endpoint"), JSON),
        _ => (405, error_body("method not allowed"), JSON),
    }
}

/// The coordinator's own `proof_fleet_` exposition followed by every
/// reachable node's exposition federated under a `node="<addr>"` label.
/// Lock-free: scrapes go straight to the node addresses, so the endpoint
/// answers mid-run.
fn federated_prometheus_body(shared: &SharedFleet) -> String {
    let mut out = prometheus_text(&shared.metrics.snapshot(), "proof_fleet_");
    let scraped: Vec<(String, String)> = shared
        .node_addrs
        .iter()
        .filter_map(|&addr| {
            request_full_timeout(
                addr,
                "GET",
                "/metrics?format=prometheus",
                None,
                Some(SCRAPE_TIMEOUT),
            )
            .ok()
            .filter(|r| r.status == 200)
            .map(|r| (addr.to_string(), r.body))
        })
        .collect();
    if !scraped.is_empty() {
        out.push_str(&federate_prometheus(&scraped));
    }
    out
}

/// Sum every reachable node's `/healthz` cache-tier summary into one
/// fleet-wide view; `nodes_reporting` says how many answered.
fn aggregate_node_cache(shared: &SharedFleet) -> Value {
    let mut totals = [
        ("memory_hits", 0u64),
        ("disk_hits", 0u64),
        ("remote_hits", 0u64),
        ("misses", 0u64),
    ];
    let mut reporting = 0u64;
    for &addr in &shared.node_addrs {
        let Ok(r) = request_full_timeout(addr, "GET", "/healthz", None, Some(SCRAPE_TIMEOUT))
        else {
            continue;
        };
        if r.status != 200 {
            continue;
        }
        let Ok(v) = serde_json::from_str::<Value>(&r.body) else {
            continue;
        };
        let Some(cache) = v.get("cache") else {
            continue;
        };
        reporting += 1;
        for (k, total) in totals.iter_mut() {
            *total += cache.get(k).and_then(Value::as_u64).unwrap_or(0);
        }
    }
    let mut c = Map::new();
    c.insert("nodes_reporting".to_string(), Value::from(reporting));
    for (k, total) in totals {
        c.insert(k.to_string(), Value::from(total));
    }
    Value::Object(c)
}

/// Always the full document: `alive` comes from the shared registry view
/// (the dispatcher republishes it mid-run) and `running` from the run
/// ledger — neither key ever disappears while a grid executes.
fn healthz_body(shared: &SharedFleet) -> String {
    let mut m = Map::new();
    m.insert("status".to_string(), Value::from("ok"));
    m.insert(
        "version".to_string(),
        Value::from(env!("CARGO_PKG_VERSION")),
    );
    m.insert(
        "uptime_s".to_string(),
        Value::from(shared.started.elapsed().as_secs()),
    );
    m.insert("nodes".to_string(), Value::from(shared.node_count as u64));
    m.insert("cache".to_string(), aggregate_node_cache(shared));
    m.insert("alive".to_string(), Value::from(shared.view.alive() as u64));
    m.insert("running".to_string(), Value::from(shared.runs.active() > 0));
    m.insert("runs_total".to_string(), Value::from(shared.runs.total()));
    m.insert(
        "runs_active".to_string(),
        Value::from(shared.runs.active() as u64),
    );
    Value::Object(m).to_string()
}

/// Parse and submit a grid spec, returning the accepted run's handle.
fn submit(shared: &SharedFleet, body: &str) -> Result<Arc<crate::runs::RunHandle>, (u16, String)> {
    let value: Value =
        serde_json::from_str(body).map_err(|e| (400, format!("invalid JSON: {e}")))?;
    let spec = GridSpec::from_value(&value).map_err(|e| (400, e.to_string()))?;
    let fleet = shared.fleet.lock().unwrap_or_else(|e| e.into_inner());
    let Some(fleet) = fleet.as_ref() else {
        return Err((503, "coordinator shutting down".to_string()));
    };
    match fleet.submit_grid(&spec) {
        Ok(handle) => Ok(handle),
        Err(e @ FleetError::Grid(_)) => Err((400, e.to_string())),
        Err(e) => Err((500, e.to_string())),
    }
}

/// `POST /grid` — synchronous: submit, then wait on the run handle. The
/// response bytes are exactly the streaming path's finished result.
fn post_grid(shared: &SharedFleet, body: &str) -> (u16, String, &'static str) {
    const JSON: &str = "application/json";
    let handle = match submit(shared, body) {
        Ok(h) => h,
        Err((status, msg)) => return (status, error_body(&msg), JSON),
    };
    match handle.wait() {
        Ok(run) => (200, run.merged, JSON),
        Err(e @ FleetError::Grid(_)) => (400, error_body(&e.to_string()), JSON),
        Err(e) => (500, error_body(&e.to_string()), JSON),
    }
}

/// `POST /grid/submit` (or `?mode=async`) — accept and return immediately.
fn post_grid_submit(shared: &SharedFleet, body: &str) -> (u16, String, &'static str) {
    const JSON: &str = "application/json";
    let handle = match submit(shared, body) {
        Ok(h) => h,
        Err((status, msg)) => return (status, error_body(&msg), JSON),
    };
    let mut m = Map::new();
    m.insert("run_id".to_string(), Value::from(handle.id()));
    m.insert(
        "shards".to_string(),
        Value::from(handle.progress().counts().total as u64),
    );
    (202, Value::Object(m).to_string(), JSON)
}

/// Look up a run by its path segment. `None` for unparseable or unknown
/// ids — both are 404s (the path names a resource that does not exist).
fn lookup_run(shared: &SharedFleet, id: &str) -> Option<Arc<crate::runs::RunHandle>> {
    id.parse::<u64>().ok().and_then(|id| shared.runs.get(id))
}

/// `GET /grid/<id>/status?since=<seq>`.
fn grid_status(shared: &SharedFleet, id: &str, query: &str) -> (u16, String, &'static str) {
    const JSON: &str = "application/json";
    let since = match query_param(query, "since") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(v) => v,
            Err(_) => return (400, error_body("malformed since cursor"), JSON),
        },
        None => 0,
    };
    match lookup_run(shared, id) {
        Some(handle) => (200, handle.status_body(since), JSON),
        None => (404, error_body("no such run"), JSON),
    }
}

/// `GET /grid/<id>/result`.
fn grid_result(shared: &SharedFleet, id: &str) -> (u16, String, &'static str) {
    const JSON: &str = "application/json";
    let Some(handle) = lookup_run(shared, id) else {
        return (404, error_body("no such run"), JSON);
    };
    match handle.result() {
        None => {
            let mut m = Map::new();
            m.insert("run_id".to_string(), Value::from(handle.id()));
            m.insert("state".to_string(), Value::from("running"));
            (202, Value::Object(m).to_string(), JSON)
        }
        Some(Ok(run)) => (200, run.merged, JSON),
        Some(Err(e @ FleetError::Grid(_))) => (400, error_body(&e.to_string()), JSON),
        Some(Err(e)) => (500, error_body(&e.to_string()), JSON),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::{run_grid_local, FleetConfig};
    use proof_serve::client::{get, post};

    #[test]
    fn coordinator_surface_round_trip() {
        let fleet = Fleet::start(FleetConfig::local(1)).unwrap();
        let server = FleetServer::start(fleet, FleetServerConfig::default()).unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        let v: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["status"], "ok");
        assert_eq!(v["nodes"].as_u64(), Some(1));
        assert_eq!(v["alive"].as_u64(), Some(1), "alive always present");
        assert_eq!(v["running"], Value::from(false));
        assert_eq!(v["version"], env!("CARGO_PKG_VERSION"));
        assert!(v["uptime_s"].as_u64().is_some());
        assert_eq!(v["cache"]["nodes_reporting"].as_u64(), Some(1));
        assert!(v["cache"]["misses"].as_u64().is_some());

        // before any run there is no merged trace to serve
        let (status, _) = get(addr, "/grid/trace").unwrap();
        assert_eq!(status, 404);

        let spec_json = r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":4}"#;
        let (status, merged) = post(addr, "/grid", spec_json).unwrap();
        assert_eq!(status, 200, "{merged}");
        let spec = GridSpec::from_value(&serde_json::from_str(spec_json).unwrap()).unwrap();
        assert_eq!(
            merged,
            run_grid_local(&spec).unwrap(),
            "served artifact matches the in-process reference byte-for-byte"
        );

        let (status, nodes) = get(addr, "/nodes").unwrap();
        assert_eq!(status, 200);
        let nodes: Value = serde_json::from_str(&nodes).unwrap();
        assert_eq!(nodes.as_array().unwrap().len(), 1);

        let (status, metrics) = get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        let m: Value = serde_json::from_str(&metrics).unwrap();
        assert_eq!(m["counters"]["fleet_completed"].as_u64(), Some(2));
        assert_eq!(m["counters"]["fleet_runs_total"].as_u64(), Some(1));

        let (status, prom) = get(addr, "/metrics?format=prometheus").unwrap();
        assert_eq!(status, 200);
        assert!(prom.contains("proof_fleet_fleet_completed"), "{prom}");
        // the federated section carries the node's own series labeled by
        // its address
        assert!(
            prom.contains("proof_serve_jobs_done_total{node=\""),
            "{prom}"
        );
        // the format selector matches in any position, like proof-serve
        // (an earlier build compared the whole query string)
        let (status, prom2) = get(addr, "/metrics?x=1&format=prometheus").unwrap();
        assert_eq!(status, 200);
        assert!(prom2.contains("proof_fleet_fleet_completed"), "{prom2}");

        // the merged cross-node trace is now served, with the synthesized
        // coordinator track and the node's own process track
        let (status, trace) = get(addr, "/grid/trace").unwrap();
        assert_eq!(status, 200);
        let t: Value = serde_json::from_str(&trace).unwrap();
        let events = t["traceEvents"].as_array().unwrap();
        assert!(events.iter().any(|e| e["name"] == "fleet_run"));
        assert!(
            events.iter().any(|e| e["pid"].as_u64() == Some(2)),
            "node track present: {trace}"
        );

        // the flight recorder saw the run start and finish
        let (status, events) = get(addr, "/debug/events").unwrap();
        assert_eq!(status, 200);
        let ev: Value = serde_json::from_str(&events).unwrap();
        let kinds: Vec<&str> = ev["events"]
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|e| e["kind"].as_str())
            .collect();
        assert!(kinds.contains(&"run"), "{events}");
        assert!(kinds.contains(&"dispatch"), "{events}");

        let (status, _) = post(addr, "/grid", "{").unwrap();
        assert_eq!(status, 400);
        let (status, _) = get(addr, "/nope").unwrap();
        assert_eq!(status, 404);

        server.shutdown();
    }

    #[test]
    fn async_submit_status_result_round_trip() {
        let fleet = Fleet::start(FleetConfig::local(1)).unwrap();
        let server = FleetServer::start(fleet, FleetServerConfig::default()).unwrap();
        let addr = server.addr();

        let spec_json = r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":9}"#;
        let (status, body) = post(addr, "/grid/submit", spec_json).unwrap();
        assert_eq!(status, 202, "{body}");
        let v: Value = serde_json::from_str(&body).unwrap();
        let run_id = v["run_id"].as_u64().unwrap();
        assert_eq!(v["shards"].as_u64(), Some(2));

        // poll status until done; the cursor must be monotone
        let mut since = 0u64;
        let final_status = loop {
            let (status, body) =
                get(addr, &format!("/grid/{run_id}/status?since={since}")).unwrap();
            assert_eq!(status, 200, "{body}");
            let s: Value = serde_json::from_str(&body).unwrap();
            let seq = s["seq"].as_u64().unwrap();
            assert!(seq >= since, "cursor never regresses");
            since = seq;
            if s["state"] != "running" {
                break s;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(final_status["state"], "done");
        assert_eq!(final_status["completed"].as_u64(), Some(2));
        assert_eq!(final_status["pending"].as_u64(), Some(0));

        let (status, merged) = get(addr, &format!("/grid/{run_id}/result")).unwrap();
        assert_eq!(status, 200, "{merged}");
        let spec = GridSpec::from_value(&serde_json::from_str(spec_json).unwrap()).unwrap();
        assert_eq!(merged, run_grid_local(&spec).unwrap());

        // ?mode=async works the same as /grid/submit
        let (status, body) = post(addr, "/grid?mode=async", spec_json).unwrap();
        assert_eq!(status, 202, "{body}");

        // unknown and malformed run ids are 404; malformed cursor is 400
        let (status, _) = get(addr, "/grid/999/status").unwrap();
        assert_eq!(status, 404);
        let (status, _) = get(addr, "/grid/abc/result").unwrap();
        assert_eq!(status, 404);
        let (status, _) = get(addr, &format!("/grid/{run_id}/status?since=x")).unwrap();
        assert_eq!(status, 400);
        // async validation errors surface at submit time
        let (status, _) = post(addr, "/grid/submit", "{").unwrap();
        assert_eq!(status, 400);

        server.shutdown();
    }

    #[test]
    fn shutdown_drains_even_with_a_request_in_flight() {
        use std::io::Write as _;
        let fleet = Fleet::start(FleetConfig::local(1)).unwrap();
        let node_addr = fleet.node_addrs()[0];
        let server = FleetServer::start(fleet, FleetServerConfig::default()).unwrap();
        let addr = server.addr();

        // a slow client: the handler thread blocks mid-read, holding a
        // clone of the shared state across the shutdown
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(50));

        server.shutdown();

        // the embedded daemon was drained: its listener is gone
        assert!(
            TcpStream::connect(node_addr).is_err(),
            "embedded daemon must not leak past shutdown"
        );
        drop(slow);
    }
}
