//! The coordinator's own HTTP surface: submit grids and watch the fleet.
//!
//! Endpoints:
//!
//! - `POST /grid` — run a grid spec to completion and return the merged
//!   artifact (synchronous; grid runs serialize on the coordinator).
//! - `GET /grid/trace` — the merged cross-node Chrome-trace document of
//!   the most recent run (Perfetto-loadable).
//! - `GET /healthz` — coordinator liveness, version, uptime, node counts,
//!   and the fleet-wide cache-tier summary aggregated from the nodes.
//! - `GET /nodes` — per-node registry snapshot: health state, in-flight,
//!   advertised worker count, shard-latency EWMA (`ewma_us`, once
//!   observed), and lifetime dispatch counters.
//! - `GET /metrics[?format=prometheus]` — fleet counters; the Prometheus
//!   form federates every reachable node's own exposition under a
//!   `node="<addr>"` label, so one scrape covers the whole fleet. The
//!   metrics registry and node addresses are shared outside the run lock,
//!   so both forms stay readable *during* a grid run (a CI smoke can watch
//!   `fleet_rescheduled` move while shards are still in flight).
//! - `GET /debug/events` — the coordinator's flight recorder: the bounded
//!   ring of scheduling events (dispatches, reschedules, node health
//!   transitions) for post-mortems.
//!
//! Reuses `proof_serve::http` wholesale — same parser, same caps, same
//! single-request connections.

use crate::coordinator::{Fleet, FleetError};
use proof_core::GridSpec;
use proof_obs::export::{federate_prometheus, prometheus_text};
use proof_obs::{FieldValue, FlightRecorder, MetricsRegistry};
use proof_serve::client::request_full_timeout;
use proof_serve::http::{read_request, write_response, write_response_typed, Request};
use serde_json::{Map, Value};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Transport bound for the coordinator's lock-free node scrapes
/// (federated metrics, healthz cache aggregation). Short on purpose: an
/// unreachable node should cost one bounded connect attempt, not stall
/// the scrape.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// Coordinator HTTP configuration.
#[derive(Debug, Clone)]
pub struct FleetServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
}

impl Default for FleetServerConfig {
    fn default() -> Self {
        FleetServerConfig {
            addr: "127.0.0.1:0".to_string(),
        }
    }
}

struct SharedFleet {
    fleet: Mutex<Fleet>,
    /// Cloned out of the fleet so metrics never block on a running grid.
    metrics: Arc<MetricsRegistry>,
    /// Same story for the flight recorder and node addresses: readable
    /// while a grid run holds the fleet lock.
    flight: Arc<FlightRecorder>,
    node_addrs: Vec<SocketAddr>,
    node_count: usize,
    started: Instant,
}

/// A running coordinator server. Owns the [`Fleet`] (and so its embedded
/// daemons).
pub struct FleetServer {
    addr: SocketAddr,
    shared: Arc<SharedFleet>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl FleetServer {
    pub fn start(fleet: Fleet, config: FleetServerConfig) -> std::io::Result<FleetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(SharedFleet {
            metrics: Arc::clone(fleet.metrics()),
            flight: Arc::clone(fleet.flight()),
            node_addrs: fleet.node_addrs(),
            node_count: fleet.nodes().len(),
            started: Instant::now(),
            fleet: Mutex::new(fleet),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    // thread-per-connection: grid runs hold the fleet lock,
                    // everything else answers concurrently
                    std::thread::spawn(move || handle(&shared, stream));
                }
            })
        };
        Ok(FleetServer {
            addr,
            shared,
            stop,
            acceptor: Some(acceptor),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, join the acceptor, and shut down the fleet's
    /// embedded daemons. In-flight grid runs finish first (they hold the
    /// fleet lock).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // wake the acceptor
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Ok(fleet) = Arc::try_unwrap(self.shared)
            .map_err(|_| ())
            .map(|s| s.fleet.into_inner().unwrap_or_else(|e| e.into_inner()))
        {
            fleet.shutdown();
        }
    }
}

fn error_body(msg: &str) -> String {
    let mut m = Map::new();
    m.insert("error".to_string(), Value::from(msg));
    Value::Object(m).to_string()
}

fn handle(shared: &SharedFleet, mut stream: TcpStream) {
    let request = match read_request(&mut stream) {
        Ok(Some(r)) => r,
        Ok(None) => return,
        Err(e) => {
            let _ = write_response(&mut stream, 400, &error_body(&e.to_string()));
            return;
        }
    };
    let (status, body, content_type) = route(shared, &request);
    let _ = write_response_typed(&mut stream, status, content_type, &body);
}

fn route(shared: &SharedFleet, req: &Request) -> (u16, String, &'static str) {
    const JSON: &str = "application/json";
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (200, healthz_body(shared), JSON),
        ("GET", ["metrics"]) if req.query == "format=prometheus" => (
            200,
            federated_prometheus_body(shared),
            "text/plain; version=0.0.4",
        ),
        ("GET", ["metrics"]) => (200, metrics_body(shared), JSON),
        ("GET", ["grid", "trace"]) => match shared.fleet.try_lock() {
            Ok(fleet) => match fleet.last_trace() {
                Some(trace) => (200, trace.to_string(), JSON),
                None => (404, error_body("no grid run yet"), JSON),
            },
            Err(_) => (503, error_body("grid run in progress"), JSON),
        },
        ("GET", ["debug", "events"]) => (200, shared.flight.to_json(), JSON),
        ("GET", ["nodes"]) => match shared.fleet.try_lock() {
            Ok(fleet) => (
                200,
                Value::Array(fleet.nodes().iter().map(|n| n.to_value()).collect()).to_string(),
                JSON,
            ),
            Err(_) => (503, error_body("grid run in progress"), JSON),
        },
        ("POST", ["grid"]) => post_grid(shared, &req.body),
        ("GET" | "POST", _) => (404, error_body("no such endpoint"), JSON),
        _ => (405, error_body("method not allowed"), JSON),
    }
}

/// The coordinator's own `proof_fleet_` exposition followed by every
/// reachable node's exposition federated under a `node="<addr>"` label.
/// Lock-free: scrapes go straight to the node addresses, so the endpoint
/// answers mid-run.
fn federated_prometheus_body(shared: &SharedFleet) -> String {
    let mut out = prometheus_text(&shared.metrics.snapshot(), "proof_fleet_");
    let scraped: Vec<(String, String)> = shared
        .node_addrs
        .iter()
        .filter_map(|&addr| {
            request_full_timeout(
                addr,
                "GET",
                "/metrics?format=prometheus",
                None,
                Some(SCRAPE_TIMEOUT),
            )
            .ok()
            .filter(|r| r.status == 200)
            .map(|r| (addr.to_string(), r.body))
        })
        .collect();
    if !scraped.is_empty() {
        out.push_str(&federate_prometheus(&scraped));
    }
    out
}

/// Sum every reachable node's `/healthz` cache-tier summary into one
/// fleet-wide view; `nodes_reporting` says how many answered.
fn aggregate_node_cache(shared: &SharedFleet) -> Value {
    let mut totals = [
        ("memory_hits", 0u64),
        ("disk_hits", 0u64),
        ("remote_hits", 0u64),
        ("misses", 0u64),
    ];
    let mut reporting = 0u64;
    for &addr in &shared.node_addrs {
        let Ok(r) = request_full_timeout(addr, "GET", "/healthz", None, Some(SCRAPE_TIMEOUT))
        else {
            continue;
        };
        if r.status != 200 {
            continue;
        }
        let Ok(v) = serde_json::from_str::<Value>(&r.body) else {
            continue;
        };
        let Some(cache) = v.get("cache") else {
            continue;
        };
        reporting += 1;
        for (k, total) in totals.iter_mut() {
            *total += cache.get(k).and_then(Value::as_u64).unwrap_or(0);
        }
    }
    let mut c = Map::new();
    c.insert("nodes_reporting".to_string(), Value::from(reporting));
    for (k, total) in totals {
        c.insert(k.to_string(), Value::from(total));
    }
    Value::Object(c)
}

fn healthz_body(shared: &SharedFleet) -> String {
    let mut m = Map::new();
    m.insert("status".to_string(), Value::from("ok"));
    m.insert(
        "version".to_string(),
        Value::from(env!("CARGO_PKG_VERSION")),
    );
    m.insert(
        "uptime_s".to_string(),
        Value::from(shared.started.elapsed().as_secs()),
    );
    m.insert("nodes".to_string(), Value::from(shared.node_count as u64));
    m.insert("cache".to_string(), aggregate_node_cache(shared));
    match shared.fleet.try_lock() {
        Ok(fleet) => {
            m.insert(
                "alive".to_string(),
                Value::from(
                    fleet
                        .nodes()
                        .iter()
                        .filter(|n| n.state != crate::registry::NodeState::Dead)
                        .count() as u64,
                ),
            );
            m.insert("running".to_string(), Value::from(false));
        }
        Err(_) => {
            m.insert("running".to_string(), Value::from(true));
        }
    }
    Value::Object(m).to_string()
}

fn metrics_body(shared: &SharedFleet) -> String {
    // full view (with per-node snapshot) when idle; counters-only while a
    // grid run holds the fleet lock
    if let Ok(fleet) = shared.fleet.try_lock() {
        return fleet.metrics_json();
    }
    let snap = shared.metrics.snapshot();
    let mut counters = Map::new();
    for (name, v) in &snap.counters {
        counters.insert(name.clone(), Value::from(*v));
    }
    let mut m = Map::new();
    m.insert("counters".to_string(), Value::Object(counters));
    m.insert("running".to_string(), Value::from(true));
    Value::Object(m).to_string()
}

fn post_grid(shared: &SharedFleet, body: &str) -> (u16, String, &'static str) {
    const JSON: &str = "application/json";
    let value: Value = match serde_json::from_str(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&format!("invalid JSON: {e}")), JSON),
    };
    let spec = match GridSpec::from_value(&value) {
        Ok(s) => s,
        Err(e) => return (400, error_body(&e.to_string()), JSON),
    };
    let mut fleet = shared.fleet.lock().unwrap_or_else(|e| e.into_inner());
    match fleet.run_grid(&spec) {
        Ok(run) => (200, run.merged, JSON),
        Err(e @ FleetError::Grid(_)) => (400, error_body(&e.to_string()), JSON),
        Err(e) => {
            shared.flight.record(
                "grid",
                format!("grid run failed: {e}"),
                vec![("http_status", FieldValue::U64(500))],
            );
            (500, error_body(&e.to_string()), JSON)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::{run_grid_local, FleetConfig};
    use proof_serve::client::{get, post};

    #[test]
    fn coordinator_surface_round_trip() {
        let fleet = Fleet::start(FleetConfig::local(1)).unwrap();
        let server = FleetServer::start(fleet, FleetServerConfig::default()).unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        let v: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["status"], "ok");
        assert_eq!(v["nodes"].as_u64(), Some(1));
        assert_eq!(v["version"], env!("CARGO_PKG_VERSION"));
        assert!(v["uptime_s"].as_u64().is_some());
        assert_eq!(v["cache"]["nodes_reporting"].as_u64(), Some(1));
        assert!(v["cache"]["misses"].as_u64().is_some());

        // before any run there is no merged trace to serve
        let (status, _) = get(addr, "/grid/trace").unwrap();
        assert_eq!(status, 404);

        let spec_json = r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":4}"#;
        let (status, merged) = post(addr, "/grid", spec_json).unwrap();
        assert_eq!(status, 200, "{merged}");
        let spec = GridSpec::from_value(&serde_json::from_str(spec_json).unwrap()).unwrap();
        assert_eq!(
            merged,
            run_grid_local(&spec).unwrap(),
            "served artifact matches the in-process reference byte-for-byte"
        );

        let (status, nodes) = get(addr, "/nodes").unwrap();
        assert_eq!(status, 200);
        let nodes: Value = serde_json::from_str(&nodes).unwrap();
        assert_eq!(nodes.as_array().unwrap().len(), 1);

        let (status, metrics) = get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        let m: Value = serde_json::from_str(&metrics).unwrap();
        assert_eq!(m["counters"]["fleet_completed"].as_u64(), Some(2));

        let (status, prom) = get(addr, "/metrics?format=prometheus").unwrap();
        assert_eq!(status, 200);
        assert!(prom.contains("proof_fleet_fleet_completed"), "{prom}");
        // the federated section carries the node's own series labeled by
        // its address
        assert!(
            prom.contains("proof_serve_jobs_done_total{node=\""),
            "{prom}"
        );

        // the merged cross-node trace is now served, with the synthesized
        // coordinator track and the node's own process track
        let (status, trace) = get(addr, "/grid/trace").unwrap();
        assert_eq!(status, 200);
        let t: Value = serde_json::from_str(&trace).unwrap();
        let events = t["traceEvents"].as_array().unwrap();
        assert!(events.iter().any(|e| e["name"] == "fleet_run"));
        assert!(
            events.iter().any(|e| e["pid"].as_u64() == Some(2)),
            "node track present: {trace}"
        );

        // the flight recorder saw the run start and finish
        let (status, events) = get(addr, "/debug/events").unwrap();
        assert_eq!(status, 200);
        let ev: Value = serde_json::from_str(&events).unwrap();
        let kinds: Vec<&str> = ev["events"]
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|e| e["kind"].as_str())
            .collect();
        assert!(kinds.contains(&"run"), "{events}");
        assert!(kinds.contains(&"dispatch"), "{events}");

        let (status, _) = post(addr, "/grid", "{").unwrap();
        assert_eq!(status, 400);
        let (status, _) = get(addr, "/nope").unwrap();
        assert_eq!(status, 404);

        server.shutdown();
    }
}
