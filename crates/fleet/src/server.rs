//! The coordinator's own HTTP surface: submit grids and watch the fleet.
//!
//! Endpoints:
//!
//! - `POST /grid` — run a grid spec to completion and return the merged
//!   artifact (synchronous; grid runs serialize on the coordinator).
//! - `GET /healthz` — coordinator liveness + node counts.
//! - `GET /nodes` — per-node registry snapshot.
//! - `GET /metrics[?format=prometheus]` — fleet counters; the metrics
//!   registry is shared outside the run lock, so counters stay readable
//!   *during* a grid run (a CI smoke can watch `fleet_rescheduled` move
//!   while shards are still in flight).
//!
//! Reuses `proof_serve::http` wholesale — same parser, same caps, same
//! single-request connections.

use crate::coordinator::{Fleet, FleetError};
use proof_core::GridSpec;
use proof_obs::export::prometheus_text;
use proof_obs::MetricsRegistry;
use proof_serve::http::{read_request, write_response, write_response_typed, Request};
use serde_json::{Map, Value};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Coordinator HTTP configuration.
#[derive(Debug, Clone)]
pub struct FleetServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
}

impl Default for FleetServerConfig {
    fn default() -> Self {
        FleetServerConfig {
            addr: "127.0.0.1:0".to_string(),
        }
    }
}

struct SharedFleet {
    fleet: Mutex<Fleet>,
    /// Cloned out of the fleet so metrics never block on a running grid.
    metrics: Arc<MetricsRegistry>,
    node_count: usize,
}

/// A running coordinator server. Owns the [`Fleet`] (and so its embedded
/// daemons).
pub struct FleetServer {
    addr: SocketAddr,
    shared: Arc<SharedFleet>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl FleetServer {
    pub fn start(fleet: Fleet, config: FleetServerConfig) -> std::io::Result<FleetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(SharedFleet {
            metrics: Arc::clone(fleet.metrics()),
            node_count: fleet.nodes().len(),
            fleet: Mutex::new(fleet),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    // thread-per-connection: grid runs hold the fleet lock,
                    // everything else answers concurrently
                    std::thread::spawn(move || handle(&shared, stream));
                }
            })
        };
        Ok(FleetServer {
            addr,
            shared,
            stop,
            acceptor: Some(acceptor),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, join the acceptor, and shut down the fleet's
    /// embedded daemons. In-flight grid runs finish first (they hold the
    /// fleet lock).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // wake the acceptor
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Ok(fleet) = Arc::try_unwrap(self.shared)
            .map_err(|_| ())
            .map(|s| s.fleet.into_inner().unwrap_or_else(|e| e.into_inner()))
        {
            fleet.shutdown();
        }
    }
}

fn error_body(msg: &str) -> String {
    let mut m = Map::new();
    m.insert("error".to_string(), Value::from(msg));
    Value::Object(m).to_string()
}

fn handle(shared: &SharedFleet, mut stream: TcpStream) {
    let request = match read_request(&mut stream) {
        Ok(Some(r)) => r,
        Ok(None) => return,
        Err(e) => {
            let _ = write_response(&mut stream, 400, &error_body(&e.to_string()));
            return;
        }
    };
    let (status, body, content_type) = route(shared, &request);
    let _ = write_response_typed(&mut stream, status, content_type, &body);
}

fn route(shared: &SharedFleet, req: &Request) -> (u16, String, &'static str) {
    const JSON: &str = "application/json";
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (200, healthz_body(shared), JSON),
        ("GET", ["metrics"]) if req.query == "format=prometheus" => (
            200,
            prometheus_text(&shared.metrics.snapshot(), "proof_fleet_"),
            "text/plain; version=0.0.4",
        ),
        ("GET", ["metrics"]) => (200, metrics_body(shared), JSON),
        ("GET", ["nodes"]) => match shared.fleet.try_lock() {
            Ok(fleet) => (
                200,
                Value::Array(fleet.nodes().iter().map(|n| n.to_value()).collect()).to_string(),
                JSON,
            ),
            Err(_) => (503, error_body("grid run in progress"), JSON),
        },
        ("POST", ["grid"]) => post_grid(shared, &req.body),
        ("GET" | "POST", _) => (404, error_body("no such endpoint"), JSON),
        _ => (405, error_body("method not allowed"), JSON),
    }
}

fn healthz_body(shared: &SharedFleet) -> String {
    let mut m = Map::new();
    m.insert("status".to_string(), Value::from("ok"));
    m.insert("nodes".to_string(), Value::from(shared.node_count as u64));
    match shared.fleet.try_lock() {
        Ok(fleet) => {
            m.insert(
                "alive".to_string(),
                Value::from(
                    fleet
                        .nodes()
                        .iter()
                        .filter(|n| n.state != crate::registry::NodeState::Dead)
                        .count() as u64,
                ),
            );
            m.insert("running".to_string(), Value::from(false));
        }
        Err(_) => {
            m.insert("running".to_string(), Value::from(true));
        }
    }
    Value::Object(m).to_string()
}

fn metrics_body(shared: &SharedFleet) -> String {
    // full view (with per-node snapshot) when idle; counters-only while a
    // grid run holds the fleet lock
    if let Ok(fleet) = shared.fleet.try_lock() {
        return fleet.metrics_json();
    }
    let snap = shared.metrics.snapshot();
    let mut counters = Map::new();
    for (name, v) in &snap.counters {
        counters.insert(name.clone(), Value::from(*v));
    }
    let mut m = Map::new();
    m.insert("counters".to_string(), Value::Object(counters));
    m.insert("running".to_string(), Value::from(true));
    Value::Object(m).to_string()
}

fn post_grid(shared: &SharedFleet, body: &str) -> (u16, String, &'static str) {
    const JSON: &str = "application/json";
    let value: Value = match serde_json::from_str(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&format!("invalid JSON: {e}")), JSON),
    };
    let spec = match GridSpec::from_value(&value) {
        Ok(s) => s,
        Err(e) => return (400, error_body(&e.to_string()), JSON),
    };
    let mut fleet = shared.fleet.lock().unwrap_or_else(|e| e.into_inner());
    match fleet.run_grid(&spec) {
        Ok(run) => (200, run.merged, JSON),
        Err(e @ FleetError::Grid(_)) => (400, error_body(&e.to_string()), JSON),
        Err(e) => (500, error_body(&e.to_string()), JSON),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::{run_grid_local, FleetConfig};
    use proof_serve::client::{get, post};

    #[test]
    fn coordinator_surface_round_trip() {
        let fleet = Fleet::start(FleetConfig::local(1)).unwrap();
        let server = FleetServer::start(fleet, FleetServerConfig::default()).unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        let v: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["status"], "ok");
        assert_eq!(v["nodes"].as_u64(), Some(1));

        let spec_json = r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":4}"#;
        let (status, merged) = post(addr, "/grid", spec_json).unwrap();
        assert_eq!(status, 200, "{merged}");
        let spec = GridSpec::from_value(&serde_json::from_str(spec_json).unwrap()).unwrap();
        assert_eq!(
            merged,
            run_grid_local(&spec).unwrap(),
            "served artifact matches the in-process reference byte-for-byte"
        );

        let (status, nodes) = get(addr, "/nodes").unwrap();
        assert_eq!(status, 200);
        let nodes: Value = serde_json::from_str(&nodes).unwrap();
        assert_eq!(nodes.as_array().unwrap().len(), 1);

        let (status, metrics) = get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        let m: Value = serde_json::from_str(&metrics).unwrap();
        assert_eq!(m["counters"]["fleet_completed"].as_u64(), Some(2));

        let (status, prom) = get(addr, "/metrics?format=prometheus").unwrap();
        assert_eq!(status, 200);
        assert!(prom.contains("proof_fleet_fleet_completed"), "{prom}");

        let (status, _) = post(addr, "/grid", "{").unwrap();
        assert_eq!(status, 400);
        let (status, _) = get(addr, "/nope").unwrap();
        assert_eq!(status, 404);

        server.shutdown();
    }
}
