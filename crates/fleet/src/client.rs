//! The coordinator's view of one worker daemon: a thin typed wrapper over
//! `proof_serve::client` that turns HTTP status codes into the outcomes the
//! dispatcher schedules on.
//!
//! Every call is bounded by the fleet's per-request timeout, so a wedged
//! node surfaces as [`WorkerError::Unreachable`] instead of hanging the
//! dispatch loop. Backpressure (429/503 that outlives the retry budget)
//! is its own variant — the node is alive, just saturated — and a job the
//! worker itself reports as failed/timed-out is a third: the *shard* needs
//! a different node, not this node declared dead on one bad job alone.

use proof_obs::{FieldValue, Level};
use proof_serve::client::{request_full_timeout, request_with_retry_timeout_headers, RetryPolicy};
use serde_json::Value;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// What `GET /healthz` reports: liveness plus the load signals the
/// weighted scheduler scores on. `workers` and `queue_capacity` are
/// floored at 1 by [`WorkerClient::probe`] (a zero would erase the node
/// from the weighted score or zero its in-flight cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerHealth {
    pub queue_depth: u64,
    pub queue_capacity: u64,
    pub workers: u64,
    pub in_flight: u64,
}

/// Why a worker interaction did not produce the asked-for result.
#[derive(Debug, Clone)]
pub enum WorkerError {
    /// Transport-level failure: refused, timed out, or died mid-response.
    /// The node is suspect.
    Unreachable(String),
    /// The node kept backpressuring (429/503) past the retry budget; it is
    /// alive but saturated — back off, don't bury it.
    Busy { retry_after_s: Option<u64> },
    /// The worker accepted the job but reported it failed or timed out.
    JobFailed(String),
    /// Any other unexpected HTTP reply or malformed body.
    Protocol(String),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Unreachable(e) => write!(f, "unreachable: {e}"),
            WorkerError::Busy { retry_after_s } => {
                write!(f, "busy (retry-after {retry_after_s:?}s)")
            }
            WorkerError::JobFailed(e) => write!(f, "job failed: {e}"),
            WorkerError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

/// Lifecycle of a submitted job, from `GET /jobs/<id>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobPoll {
    /// Queued or running — keep polling.
    Pending,
    /// Finished; the report is ready to fetch.
    Done,
    /// The worker gave up on it (failed or deadline-expired).
    Failed(String),
}

// One-time-warning latches for malformed healthz capacity signals, per
// process: the condition repeats on every probe cadence and would
// otherwise flood the event stream.
static WARNED_WORKERS: AtomicBool = AtomicBool::new(false);
static WARNED_QUEUE_CAP: AtomicBool = AtomicBool::new(false);

/// Read a capacity signal (`workers`, `queue_capacity`) from a healthz
/// body, flooring it at 1: a missing or zero value would make weighted
/// dispatch score the node as zero-capacity and silently starve it. The
/// first malformed sighting per process emits a `Warn` naming the field.
fn capacity_signal(v: &Value, addr: SocketAddr, key: &str, warned: &AtomicBool) -> u64 {
    match v.get(key).and_then(Value::as_u64) {
        Some(n) if n >= 1 => n,
        got => {
            if !warned.swap(true, Ordering::Relaxed) {
                let what = if got.is_some() { "zero" } else { "no" };
                proof_obs::event(
                    Level::Warn,
                    "proof_fleet",
                    format!(
                        "healthz from {addr} advertises {what} {key}; flooring at 1 so \
                         weighted dispatch cannot starve the node"
                    ),
                    vec![
                        ("field", FieldValue::Str(key.to_string())),
                        ("node_addr", FieldValue::Str(addr.to_string())),
                    ],
                );
            }
            1
        }
    }
}

/// A handle to one worker daemon.
#[derive(Debug, Clone)]
pub struct WorkerClient {
    pub addr: SocketAddr,
    /// Per-request transport bound (connect + each read/write).
    pub timeout: Duration,
    /// Backpressure retry schedule (seed-keyed, deterministic).
    pub retry: RetryPolicy,
}

impl WorkerClient {
    pub fn new(addr: SocketAddr, timeout: Duration, seed: u64) -> WorkerClient {
        WorkerClient {
            addr,
            timeout,
            retry: RetryPolicy::new(seed),
        }
    }

    fn io_err(e: std::io::Error) -> WorkerError {
        WorkerError::Unreachable(e.to_string())
    }

    fn parse(body: &str) -> Result<Value, WorkerError> {
        serde_json::from_str(body).map_err(|e| WorkerError::Protocol(format!("bad JSON: {e}")))
    }

    /// `GET /healthz` — one bounded attempt, no retries: a probe that needs
    /// a retry schedule is already the answer.
    pub fn probe(&self) -> Result<WorkerHealth, WorkerError> {
        let r = request_full_timeout(self.addr, "GET", "/healthz", None, Some(self.timeout))
            .map_err(Self::io_err)?;
        if r.status != 200 {
            return Err(WorkerError::Protocol(format!(
                "healthz returned {}",
                r.status
            )));
        }
        let v = Self::parse(&r.body)?;
        let field = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
        Ok(WorkerHealth {
            queue_depth: field("queue_depth"),
            queue_capacity: capacity_signal(&v, self.addr, "queue_capacity", &WARNED_QUEUE_CAP),
            workers: capacity_signal(&v, self.addr, "workers", &WARNED_WORKERS),
            in_flight: field("in_flight"),
        })
    }

    /// `POST /jobs` with backpressure retries; returns the job id.
    pub fn submit(&self, job: &Value) -> Result<u64, WorkerError> {
        self.submit_traced(job, None)
    }

    /// [`WorkerClient::submit`] carrying the coordinator's distributed
    /// trace context as an `X-Proof-Trace: <trace>:<parent span>` header,
    /// so the worker executes the job inside the fleet's trace instead of
    /// allocating its own.
    pub fn submit_traced(
        &self,
        job: &Value,
        trace: Option<(u64, u64)>,
    ) -> Result<u64, WorkerError> {
        let body = job.to_string();
        let header_value = trace.map(|(t, s)| format!("{t}:{s}"));
        let headers: Vec<(&str, &str)> = header_value
            .as_deref()
            .map(|v| vec![("X-Proof-Trace", v)])
            .unwrap_or_default();
        // zero in-client retries: the shared retry helper sleeps the
        // server's Retry-After hint as a floor, so a node advertising a
        // long holdoff would block the single-threaded dispatch loop for
        // minutes inside this call. Backpressure scheduling belongs to
        // the dispatcher — a 429/503 surfaces immediately as `Busy` and
        // the registry holds the node off while other nodes keep working.
        let submit_policy = RetryPolicy {
            max_retries: 0,
            ..self.retry
        };
        let r = request_with_retry_timeout_headers(
            self.addr,
            "POST",
            "/jobs",
            Some(&body),
            &submit_policy,
            Some(self.timeout),
            &headers,
        )
        .map_err(Self::io_err)?;
        match r.status {
            201 => Self::parse(&r.body)?
                .get("id")
                .and_then(Value::as_u64)
                .ok_or_else(|| WorkerError::Protocol("submission reply without id".into())),
            429 | 503 => Err(WorkerError::Busy {
                retry_after_s: r.retry_after_s,
            }),
            s => Err(WorkerError::Protocol(format!(
                "submission returned {s}: {}",
                r.body
            ))),
        }
    }

    /// `GET /jobs/<id>` — current lifecycle state.
    pub fn poll(&self, id: u64) -> Result<JobPoll, WorkerError> {
        let path = format!("/jobs/{id}");
        let r = request_full_timeout(self.addr, "GET", &path, None, Some(self.timeout))
            .map_err(Self::io_err)?;
        // a backpressured status GET means the node is alive but
        // saturated — the dispatcher must keep the shard's deadline
        // ticking, not treat this as protocol breakage
        if r.status == 429 || r.status == 503 {
            return Err(WorkerError::Busy {
                retry_after_s: r.retry_after_s,
            });
        }
        if r.status != 200 {
            return Err(WorkerError::Protocol(format!(
                "job status returned {}: {}",
                r.status, r.body
            )));
        }
        let v = Self::parse(&r.body)?;
        let status = v.get("status").and_then(Value::as_str).unwrap_or("");
        let error = || {
            v.get("error")
                .and_then(Value::as_str)
                .unwrap_or("unknown error")
                .to_string()
        };
        match status {
            "queued" | "running" => Ok(JobPoll::Pending),
            "done" => Ok(JobPoll::Done),
            "failed" | "timed_out" => Ok(JobPoll::Failed(error())),
            other => Err(WorkerError::Protocol(format!("unknown job status {other}"))),
        }
    }

    /// `POST /cache/peers` — advertise the other nodes' cache endpoints so
    /// this worker's tiered store can serve rescheduled shards from a warm
    /// peer instead of re-simulating.
    pub fn advertise_peers(&self, peers: &[SocketAddr]) -> Result<u64, WorkerError> {
        let body = {
            let list: Vec<Value> = peers.iter().map(|a| Value::from(a.to_string())).collect();
            let mut m = serde_json::Map::new();
            m.insert("peers".to_string(), Value::Array(list));
            Value::Object(m).to_string()
        };
        let r = request_full_timeout(
            self.addr,
            "POST",
            "/cache/peers",
            Some(&body),
            Some(self.timeout),
        )
        .map_err(Self::io_err)?;
        if r.status != 200 {
            return Err(WorkerError::Protocol(format!(
                "peer advertisement returned {}: {}",
                r.status, r.body
            )));
        }
        Self::parse(&r.body)?
            .get("peers")
            .and_then(Value::as_u64)
            .ok_or_else(|| WorkerError::Protocol("advertisement reply without peers".into()))
    }

    /// `GET /metrics` — the worker's lifetime remote-tier hit count, for
    /// the coordinator's `fleet_cache_remote_hits` aggregation.
    pub fn cache_remote_hits(&self) -> Result<u64, WorkerError> {
        let r = request_full_timeout(self.addr, "GET", "/metrics", None, Some(self.timeout))
            .map_err(Self::io_err)?;
        if r.status != 200 {
            return Err(WorkerError::Protocol(format!(
                "metrics returned {}",
                r.status
            )));
        }
        Self::parse(&r.body)?
            .get("cache")
            .and_then(|c| c.get("remote_hits"))
            .and_then(Value::as_u64)
            .ok_or_else(|| WorkerError::Protocol("metrics without cache.remote_hits".into()))
    }

    /// `GET /trace/<trace>?format=spans` — the worker's raw span records
    /// for one trace, for the coordinator's cross-node merge. `Ok(None)`
    /// when the worker holds no spans for that trace (it executed no shard
    /// of the run, or its ring already evicted them).
    pub fn fetch_trace_spans(&self, trace: u64) -> Result<Option<Value>, WorkerError> {
        let path = format!("/trace/{trace}?format=spans");
        let r = request_full_timeout(self.addr, "GET", &path, None, Some(self.timeout))
            .map_err(Self::io_err)?;
        match r.status {
            200 => Ok(Some(Self::parse(&r.body)?)),
            404 => Ok(None),
            s => Err(WorkerError::Protocol(format!("trace fetch returned {s}"))),
        }
    }

    /// `GET /metrics?format=prometheus` — the worker's full text
    /// exposition, for the coordinator's federated scrape.
    pub fn scrape_prometheus(&self) -> Result<String, WorkerError> {
        let r = request_full_timeout(
            self.addr,
            "GET",
            "/metrics?format=prometheus",
            None,
            Some(self.timeout),
        )
        .map_err(Self::io_err)?;
        if r.status != 200 {
            return Err(WorkerError::Protocol(format!(
                "metrics scrape returned {}",
                r.status
            )));
        }
        Ok(r.body)
    }

    /// `GET /jobs/<id>/report` — the finished artifact, byte-exact.
    pub fn report(&self, id: u64) -> Result<String, WorkerError> {
        let path = format!("/jobs/{id}/report");
        let r = request_full_timeout(self.addr, "GET", &path, None, Some(self.timeout))
            .map_err(Self::io_err)?;
        match r.status {
            200 => Ok(r.body),
            429 | 503 => Err(WorkerError::Busy {
                retry_after_s: r.retry_after_s,
            }),
            500 | 504 => Err(WorkerError::JobFailed(r.body)),
            s => Err(WorkerError::Protocol(format!("report returned {s}"))),
        }
    }
}

/// A typed client for the *coordinator's* streaming grid surface — the
/// job-style mirror of [`WorkerClient`], one level up the hierarchy.
/// Wraps `POST /grid/submit`, `GET /grid/<id>/status?since=`, and
/// `GET /grid/<id>/result` so programmatic callers (and tests) don't
/// hand-roll the three-endpoint poll loop.
#[derive(Debug, Clone)]
pub struct CoordinatorClient {
    pub addr: SocketAddr,
    /// Per-request transport bound (connect + each read/write).
    pub timeout: Duration,
}

/// What `GET /grid/<id>/result` answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunResult {
    /// 202 — the run thread is still dispatching; poll again.
    Running,
    /// 200 — the merged artifact, byte-identical to the sync path.
    Done(String),
    /// The coordinator reported the run's terminal `FleetError`.
    Failed(String),
}

impl CoordinatorClient {
    pub fn new(addr: SocketAddr, timeout: Duration) -> CoordinatorClient {
        CoordinatorClient { addr, timeout }
    }

    fn io_err(e: std::io::Error) -> WorkerError {
        WorkerError::Unreachable(e.to_string())
    }

    /// `POST /grid/submit` — validate the spec and mint a run; returns the
    /// run id the status/result endpoints key on.
    pub fn submit_grid(&self, spec_json: &str) -> Result<u64, WorkerError> {
        let r = request_full_timeout(
            self.addr,
            "POST",
            "/grid/submit",
            Some(spec_json),
            Some(self.timeout),
        )
        .map_err(Self::io_err)?;
        if r.status != 202 {
            return Err(WorkerError::Protocol(format!(
                "grid submit returned {}: {}",
                r.status, r.body
            )));
        }
        WorkerClient::parse(&r.body)?
            .get("run_id")
            .and_then(Value::as_u64)
            .ok_or_else(|| WorkerError::Protocol("submit reply without run_id".into()))
    }

    /// `GET /grid/<id>/status?since=<seq>` — live counts plus every
    /// progress event past the cursor; the returned document's `seq` is
    /// the exact cursor for the next poll.
    pub fn run_status(&self, run_id: u64, since: u64) -> Result<Value, WorkerError> {
        let path = format!("/grid/{run_id}/status?since={since}");
        let r = request_full_timeout(self.addr, "GET", &path, None, Some(self.timeout))
            .map_err(Self::io_err)?;
        if r.status != 200 {
            return Err(WorkerError::Protocol(format!(
                "run status returned {}: {}",
                r.status, r.body
            )));
        }
        WorkerClient::parse(&r.body)
    }

    /// `GET /grid/<id>/result` — the run's terminal artifact, if any.
    pub fn run_result(&self, run_id: u64) -> Result<RunResult, WorkerError> {
        let path = format!("/grid/{run_id}/result");
        let r = request_full_timeout(self.addr, "GET", &path, None, Some(self.timeout))
            .map_err(Self::io_err)?;
        match r.status {
            200 => Ok(RunResult::Done(r.body)),
            202 => Ok(RunResult::Running),
            400 | 500 => Ok(RunResult::Failed(r.body)),
            s => Err(WorkerError::Protocol(format!("run result returned {s}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_serve::{ServeConfig, Server};

    fn local_server() -> Server {
        Server::start(ServeConfig::default()).unwrap()
    }

    #[test]
    fn probe_reads_the_load_signals() {
        let server = local_server();
        let c = WorkerClient::new(server.addr(), Duration::from_secs(5), 1);
        let h = c.probe().unwrap();
        assert_eq!(h.workers, 2);
        assert!(h.queue_capacity > 0);
        assert_eq!(h.in_flight, 0);
        server.shutdown();
    }

    #[test]
    fn submit_poll_report_round_trip() {
        let server = local_server();
        let c = WorkerClient::new(server.addr(), Duration::from_secs(5), 1);
        let job: Value =
            serde_json::from_str(r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":1}"#)
                .unwrap();
        let id = c.submit(&job).unwrap();
        let mut polls = 0;
        loop {
            match c.poll(id).unwrap() {
                JobPoll::Done => break,
                JobPoll::Pending => {
                    polls += 1;
                    assert!(polls < 2_000, "job never finished");
                    std::thread::sleep(Duration::from_millis(5));
                }
                JobPoll::Failed(e) => panic!("job failed: {e}"),
            }
        }
        let report = c.report(id).unwrap();
        assert!(report.contains("\"model\""));
        server.shutdown();
    }

    #[test]
    fn probe_floors_missing_or_zero_capacity_signals_at_one() {
        // a healthz body with no `workers` and a zero `queue_capacity`
        // must not zero the load signals — weighted dispatch would score
        // the node as zero-capacity and starve it
        use std::io::{Read, Write};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                let mut s = stream;
                let mut buf = [0u8; 4096];
                let _ = s.read(&mut buf);
                let body = r#"{"status":"ok","queue_depth":3,"queue_capacity":0,"in_flight":1}"#;
                let _ = s.write_all(
                    format!(
                        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                        body.len()
                    )
                    .as_bytes(),
                );
            }
        });
        let c = WorkerClient::new(addr, Duration::from_secs(2), 1);
        let h = c.probe().unwrap();
        assert_eq!(h.workers, 1, "missing workers floors at 1");
        assert_eq!(h.queue_capacity, 1, "zero queue_capacity floors at 1");
        assert_eq!(h.queue_depth, 3, "depth passes through untouched");
        assert_eq!(h.in_flight, 1);
    }

    #[test]
    fn coordinator_client_drives_a_streaming_run() {
        let fleet = crate::Fleet::start(crate::FleetConfig::local(1)).unwrap();
        let server = crate::FleetServer::start(fleet, crate::FleetServerConfig::default()).unwrap();
        let c = CoordinatorClient::new(server.addr(), Duration::from_secs(5));

        // a spec that fails validation is rejected at submit, not minted
        assert!(matches!(
            c.submit_grid(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[]}"#),
            Err(WorkerError::Protocol(_))
        ));

        let spec = r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":7}"#;
        let id = c.submit_grid(spec).unwrap();
        let mut cursor = 0;
        let merged = loop {
            let s = c.run_status(id, cursor).unwrap();
            let seq = s["seq"].as_u64().unwrap();
            assert!(seq >= cursor, "status cursor regressed");
            cursor = seq;
            match c.run_result(id).unwrap() {
                RunResult::Done(m) => break m,
                RunResult::Running => std::thread::sleep(Duration::from_millis(10)),
                RunResult::Failed(e) => panic!("run failed: {e}"),
            }
        };
        let spec_v =
            proof_core::GridSpec::from_value(&serde_json::from_str(spec).unwrap()).unwrap();
        assert_eq!(merged, crate::run_grid_local(&spec_v).unwrap());
        server.shutdown();
    }

    #[test]
    fn unreachable_node_is_reported_as_unreachable() {
        // bind-then-drop gives an address that refuses connections
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let c = WorkerClient::new(addr, Duration::from_millis(200), 1);
        assert!(matches!(c.probe(), Err(WorkerError::Unreachable(_))));
    }
}
