//! Shard planning: grid → independently dispatchable shards, in a
//! seed-deterministic dispatch order.
//!
//! Shard *ids* are the canonical cell indices from
//! [`GridSpec::cells`](proof_core::GridSpec::cells) — the merge slots
//! results by id, so ids must be a function of the spec alone. The
//! *dispatch order* is a separate concern: shuffling it by the grid seed
//! spreads expensive cells (big models, big batches sit adjacent in
//! canonical order) across nodes instead of handing one node a contiguous
//! run of heavy work. The shuffle is a pure function of the seed, so two
//! coordinators given the same spec dispatch in the same order.

use proof_core::{GridCell, GridSpec, ProofError};
use proof_obs::fault::mix64;

/// One unit of dispatch: a canonical cell index plus its cell.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Canonical index into `spec.cells()` — the merge slot.
    pub id: usize,
    pub cell: GridCell,
}

/// The full dispatch plan for one grid run.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Shards in dispatch order (seeded shuffle of the canonical order).
    pub shards: Vec<Shard>,
    /// Total cells in the grid (== `shards.len()`).
    pub cells: usize,
}

/// Expand and order the grid. Fails on an invalid spec (empty axes,
/// oversized grid) — the same validation a worker would apply per cell.
pub fn plan_shards(spec: &GridSpec) -> Result<ShardPlan, ProofError> {
    spec.validate()?;
    let mut shards: Vec<Shard> = spec
        .cells()
        .into_iter()
        .enumerate()
        .map(|(id, cell)| Shard { id, cell })
        .collect();
    let cells = shards.len();
    // seeded dispatch order: sort by a keyed hash of the shard id; ties
    // (impossible for distinct ids under mix64, but cheap to guard) break
    // by id so the order is total and deterministic
    shards.sort_by_key(|s| (mix64(spec.seed ^ (s.id as u64).wrapping_add(1)), s.id));
    Ok(ShardPlan { shards, cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    fn spec(json: &str) -> GridSpec {
        let v: Value = serde_json::from_str(json).unwrap();
        GridSpec::from_value(&v).unwrap()
    }

    #[test]
    fn plan_covers_every_cell_exactly_once() {
        let s = spec(
            r#"{"models":["resnet-50","vit-tiny"],"platform":"a100","batches":[1,2,4],"seed":9}"#,
        );
        let plan = plan_shards(&s).unwrap();
        assert_eq!(plan.cells, 6);
        let mut ids: Vec<usize> = plan.shards.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn dispatch_order_is_a_pure_function_of_the_seed() {
        let s = spec(r#"{"model":"resnet-50","platform":"a100","batches":[1,2,4,8],"seed":5}"#);
        let a: Vec<usize> = plan_shards(&s)
            .unwrap()
            .shards
            .iter()
            .map(|x| x.id)
            .collect();
        let b: Vec<usize> = plan_shards(&s)
            .unwrap()
            .shards
            .iter()
            .map(|x| x.id)
            .collect();
        assert_eq!(a, b, "same seed, same order");
        let mut s2 = s.clone();
        s2.seed = 6;
        let c: Vec<usize> = plan_shards(&s2)
            .unwrap()
            .shards
            .iter()
            .map(|x| x.id)
            .collect();
        assert_ne!(a, c, "different seed shuffles differently");
    }

    #[test]
    fn shard_ids_stay_canonical_under_the_shuffle() {
        let s = spec(r#"{"model":"resnet-50","platform":"a100","batches":[1,2],"seed":3}"#);
        let cells = s.cells();
        for shard in plan_shards(&s).unwrap().shards {
            assert_eq!(shard.cell, cells[shard.id], "id still names its cell");
        }
    }
}
