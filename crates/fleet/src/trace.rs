//! Cross-node trace merging: one Perfetto/Chrome-trace document for a whole
//! fleet run, assembled from the coordinator's dispatch record and each
//! worker's raw span listing (`GET /trace/<id>?format=spans`).
//!
//! The merged document is **byte-deterministic** for a given spec, seed,
//! and topology, which takes three deliberate moves:
//!
//! 1. **The coordinator track is synthesized, not sampled.** The live
//!    `fleet_shard` spans are opened in completion-observation order, which
//!    races across nodes; instead the coordinator track is rebuilt from the
//!    [`ShardReport`]s on a unit-step logical timeline — `fleet_run` covers
//!    the whole run, shard `k` (in canonical shard order) occupies its own
//!    slot inside it.
//! 2. **Node tracks are re-anchored and renumbered.** Each node's spans are
//!    sorted by (logical start, id), shifted so the node's first span
//!    starts at 0, and every span id is renumbered into one collision-free
//!    global sequence — raw ids come from per-process allocators and would
//!    differ run to run.
//! 3. **Run-varying fields are dropped or resolved.** `addr` (an ephemeral
//!    port) and `remote_parent` (a coordinator-process span id) never reach
//!    the output: the job id is resolved to its canonical `shard` index and
//!    the job span is re-parented onto the synthesized `fleet_shard`.
//!
//! Tracks: the coordinator is pid 1; node `i` is pid `2 + i`, so every node
//! renders as its own process row in Perfetto.

use crate::dispatcher::ShardReport;
use proof_obs::export::{chrome_trace_json, TraceEvent};
use proof_obs::FieldValue;
use serde_json::Value;

/// pid of the synthesized coordinator track.
pub const COORDINATOR_PID: u32 = 1;

/// pid of node `i`'s track.
pub fn node_pid(node: usize) -> u32 {
    2 + node as u32
}

/// One parsed span out of a worker's `?format=spans` listing.
struct NodeSpan {
    id: u64,
    parent: u64,
    name: String,
    start_us: f64,
    end_us: f64,
    fields: Vec<(String, FieldValue)>,
}

fn field_from_value(v: &Value) -> FieldValue {
    if let Some(n) = v.as_u64() {
        FieldValue::U64(n)
    } else if let Some(n) = v.as_i64() {
        FieldValue::I64(n)
    } else if let Some(b) = v.as_bool() {
        FieldValue::Bool(b)
    } else if let Some(x) = v.as_f64() {
        FieldValue::F64(x)
    } else if let Some(s) = v.as_str() {
        FieldValue::Str(s.to_string())
    } else {
        FieldValue::Str(v.to_string())
    }
}

fn parse_spans(doc: &Value) -> Vec<NodeSpan> {
    let Some(arr) = doc.get("spans").and_then(Value::as_array) else {
        return Vec::new();
    };
    let mut spans: Vec<NodeSpan> = arr
        .iter()
        .filter_map(|s| {
            Some(NodeSpan {
                id: s.get("id")?.as_u64()?,
                parent: s.get("parent").and_then(Value::as_u64).unwrap_or(0),
                name: s.get("name")?.as_str()?.to_string(),
                start_us: s.get("start_us").and_then(Value::as_f64).unwrap_or(0.0),
                end_us: s.get("end_us").and_then(Value::as_f64).unwrap_or(0.0),
                fields: s
                    .get("fields")
                    .and_then(Value::as_object)
                    .map(|m| {
                        m.iter()
                            .map(|(k, v)| (k.clone(), field_from_value(v)))
                            .collect()
                    })
                    .unwrap_or_default(),
            })
        })
        .collect();
    spans.sort_by(|a, b| a.start_us.total_cmp(&b.start_us).then(a.id.cmp(&b.id)));
    spans
}

fn field_u64(fields: &[(String, FieldValue)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| match v {
        FieldValue::U64(n) if k == key => Some(*n),
        _ => None,
    })
}

fn field_str<'a>(fields: &'a [(String, FieldValue)], key: &str) -> Option<&'a str> {
    fields.iter().find_map(|(k, v)| match v {
        FieldValue::Str(s) if k == key => Some(s.as_str()),
        _ => None,
    })
}

/// Merge one fleet run into a Chrome-trace document.
///
/// - `shards`: the run's completion records (any order; sorted internally
///   by canonical shard id).
/// - `nodes_total`: registry size, recorded on the `fleet_run` slice.
/// - `node_docs`: `(node index, node address, spans listing)` per node that
///   answered the post-run trace fetch. The address filters span ownership:
///   embedded daemons share one process-wide ring, so a listing can contain
///   spans executed by a *different* daemon of the same process.
pub fn merge_fleet_trace(
    shards: &[ShardReport],
    nodes_total: usize,
    node_docs: &[(usize, String, Value)],
) -> String {
    let mut ordered: Vec<ShardReport> = shards.to_vec();
    ordered.sort_by_key(|r| r.shard);
    let n = ordered.len();

    let mut events: Vec<TraceEvent> = Vec::new();
    let mut next_id: u64 = 1;

    // --- coordinator track: synthesized unit-step timeline ---
    let run_id = next_id;
    next_id += 1;
    events.push(TraceEvent {
        name: "fleet_run".to_string(),
        cat: "fleet",
        pid: COORDINATOR_PID,
        tid: 0,
        ts_us: 0.0,
        dur_us: (2 * n + 2) as f64,
        args: vec![
            ("span".to_string(), FieldValue::U64(run_id)),
            ("parent".to_string(), FieldValue::U64(0)),
            ("shards".to_string(), FieldValue::U64(n as u64)),
            ("nodes".to_string(), FieldValue::U64(nodes_total as u64)),
        ],
    });
    // (node, worker job id) -> the synthesized fleet_shard's exported id
    // and canonical shard index; the join key for re-parenting job spans
    let mut shard_anchor: Vec<((usize, u64), (u64, usize))> = Vec::new();
    for (k, report) in ordered.iter().enumerate() {
        let id = next_id;
        next_id += 1;
        shard_anchor.push(((report.node, report.job_id), (id, report.shard)));
        events.push(TraceEvent {
            name: "fleet_shard".to_string(),
            cat: "fleet",
            pid: COORDINATOR_PID,
            tid: 0,
            ts_us: (2 * k + 1) as f64,
            dur_us: 1.0,
            args: vec![
                ("span".to_string(), FieldValue::U64(id)),
                ("parent".to_string(), FieldValue::U64(run_id)),
                ("shard".to_string(), FieldValue::U64(report.shard as u64)),
                ("node".to_string(), FieldValue::U64(report.node as u64)),
                (
                    "attempts".to_string(),
                    FieldValue::U64(u64::from(report.attempts)),
                ),
            ],
        });
    }
    let anchor = |node: usize, job: u64| -> Option<(u64, usize)> {
        shard_anchor
            .iter()
            .find(|(key, _)| *key == (node, job))
            .map(|(_, v)| *v)
    };

    // --- node tracks, in node-index order ---
    let mut docs: Vec<&(usize, String, Value)> = node_docs.iter().collect();
    docs.sort_by_key(|(i, _, _)| *i);
    for (node, addr, doc) in docs {
        let spans = parse_spans(doc);
        // ownership pass: keep job spans this daemon executed for this run,
        // plus every span whose parent chain leads to one (spans are sorted
        // by logical start, so parents precede their children)
        let mut kept: Vec<&NodeSpan> = Vec::new();
        let mut kept_ids: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for s in &spans {
            let owned_job = s.name == "job"
                && field_str(&s.fields, "addr") == Some(addr.as_str())
                && field_u64(&s.fields, "job").is_some_and(|job| anchor(*node, job).is_some());
            if owned_job || kept_ids.contains(&s.parent) {
                kept_ids.insert(s.id);
                kept.push(s);
            }
        }
        if kept.is_empty() {
            continue;
        }
        let t0 = kept
            .iter()
            .map(|s| s.start_us)
            .fold(f64::INFINITY, f64::min);
        // renumber into the global sequence, in (start, id) order
        let local: std::collections::HashMap<u64, u64> = kept
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, next_id + i as u64))
            .collect();
        next_id += kept.len() as u64;
        for s in &kept {
            let job = field_u64(&s.fields, "job").and_then(|job| anchor(*node, job));
            let parent = match local.get(&s.parent) {
                Some(&p) => p,
                // a job span roots its node-local subtree; re-parent it
                // onto the coordinator's synthesized fleet_shard
                None => job.map(|(anchor_id, _)| anchor_id).unwrap_or(0),
            };
            let mut args = vec![
                ("span".to_string(), FieldValue::U64(local[&s.id])),
                ("parent".to_string(), FieldValue::U64(parent)),
            ];
            if let Some((_, shard)) = job {
                args.push(("shard".to_string(), FieldValue::U64(shard as u64)));
            }
            args.extend(
                s.fields
                    .iter()
                    .filter(|(k, _)| !matches!(k.as_str(), "job" | "addr" | "remote_parent"))
                    .map(|(k, v)| (k.clone(), v.clone())),
            );
            events.push(TraceEvent {
                name: s.name.clone(),
                cat: "pipeline",
                pid: node_pid(*node),
                tid: 0,
                ts_us: s.start_us - t0,
                dur_us: s.end_us - s.start_us,
                args,
            });
        }
    }
    chrome_trace_json(&events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn report(shard: usize, node: usize, job_id: u64) -> ShardReport {
        ShardReport {
            shard,
            node,
            job_id,
            attempts: 1,
        }
    }

    fn node_doc(addr: &str, job_id: u64, base_id: u64, start: f64) -> Value {
        json!({
            "trace": 7,
            "spans": [
                {
                    "id": base_id,
                    "parent": 0,
                    "name": "job",
                    "start_us": start,
                    "end_us": (start + 10.0),
                    "wall_us": 123.4,
                    "fields": {"job": job_id, "addr": addr, "remote_parent": 99, "status": "done"}
                },
                {
                    "id": (base_id + 1),
                    "parent": base_id,
                    "name": "compile",
                    "start_us": (start + 1.0),
                    "end_us": (start + 2.0),
                    "wall_us": 55.0,
                    "fields": {}
                }
            ]
        })
    }

    #[test]
    fn merge_synthesizes_a_deterministic_coordinator_track() {
        // same run observed with different completion orders and different
        // raw span ids must merge byte-identically
        let a = merge_fleet_trace(
            &[report(1, 1, 4), report(0, 0, 9)],
            2,
            &[
                (
                    0,
                    "127.0.0.1:1000".into(),
                    node_doc("127.0.0.1:1000", 9, 50, 0.0),
                ),
                (
                    1,
                    "127.0.0.1:2000".into(),
                    node_doc("127.0.0.1:2000", 4, 80, 0.0),
                ),
            ],
        );
        let b = merge_fleet_trace(
            &[report(0, 0, 9), report(1, 1, 4)],
            2,
            &[
                (
                    1,
                    "127.0.0.1:9000".into(),
                    node_doc("127.0.0.1:9000", 4, 700, 5.0),
                ),
                (
                    0,
                    "127.0.0.1:8000".into(),
                    node_doc("127.0.0.1:8000", 9, 300, 2.0),
                ),
            ],
        );
        assert_eq!(
            a, b,
            "merge must not depend on observation order or raw ids"
        );

        let doc: Value = serde_json::from_str(&a).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        // coordinator track: fleet_run + 2 fleet_shard, then 2 spans/node
        assert_eq!(events.len(), 3 + 4);
        let run = events.iter().find(|e| e["name"] == "fleet_run").unwrap();
        assert_eq!(run["pid"].as_u64(), Some(1));
        assert_eq!(run["args"]["shards"].as_u64(), Some(2));
        let shard_spans: Vec<&Value> = events
            .iter()
            .filter(|e| e["name"] == "fleet_shard")
            .collect();
        assert_eq!(shard_spans.len(), 2);
        for s in &shard_spans {
            assert_eq!(s["args"]["parent"], run["args"]["span"]);
        }
        // each node renders as its own process track
        let pids: std::collections::BTreeSet<u64> =
            events.iter().map(|e| e["pid"].as_u64().unwrap()).collect();
        assert_eq!(pids, [1u64, 2, 3].into_iter().collect());
        // job spans are re-parented onto their fleet_shard, carry the
        // canonical shard index, and drop the run-varying fields
        for job in events.iter().filter(|e| e["name"] == "job") {
            let parent = &job["args"]["parent"];
            let anchor = shard_spans
                .iter()
                .find(|s| s["args"]["span"] == *parent)
                .expect("job parented onto a fleet_shard");
            assert_eq!(anchor["args"]["shard"], job["args"]["shard"]);
            assert!(job["args"]["addr"].is_null());
            assert!(job["args"]["remote_parent"].is_null());
            assert!(job["args"]["job"].is_null());
            assert_eq!(job["args"]["status"], "done");
        }
        // stage spans stay children of their job span
        let compile = events.iter().find(|e| e["name"] == "compile").unwrap();
        let job_ids: Vec<&Value> = events
            .iter()
            .filter(|e| e["name"] == "job")
            .map(|e| &e["args"]["span"])
            .collect();
        assert!(job_ids.contains(&&compile["args"]["parent"]));
    }

    #[test]
    fn shared_process_listings_are_filtered_by_address() {
        // two embedded daemons share one ring: each listing contains both
        // daemons' spans (with colliding job ids); the addr field decides
        let both = json!({
            "trace": 7,
            "spans": [
                node_doc("127.0.0.1:1", 1, 10, 0.0)["spans"][0].clone(),
                node_doc("127.0.0.1:1", 1, 10, 0.0)["spans"][1].clone(),
                node_doc("127.0.0.1:2", 1, 20, 0.0)["spans"][0].clone(),
                node_doc("127.0.0.1:2", 1, 20, 0.0)["spans"][1].clone(),
            ]
        });
        let merged = merge_fleet_trace(
            &[report(0, 0, 1), report(1, 1, 1)],
            2,
            &[
                (0, "127.0.0.1:1".into(), both.clone()),
                (1, "127.0.0.1:2".into(), both),
            ],
        );
        let doc: Value = serde_json::from_str(&merged).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        // no duplication: each node track carries exactly its own 2 spans
        assert_eq!(
            events.iter().filter(|e| e["pid"] == 2).count(),
            2,
            "{merged}"
        );
        assert_eq!(events.iter().filter(|e| e["pid"] == 3).count(), 2);
    }

    #[test]
    fn empty_run_is_still_a_valid_document() {
        let merged = merge_fleet_trace(&[], 0, &[]);
        let doc: Value = serde_json::from_str(&merged).unwrap();
        // just the fleet_run slice
        assert_eq!(doc["traceEvents"].as_array().unwrap().len(), 1);
    }
}
