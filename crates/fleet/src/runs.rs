//! The run ledger and shared fleet view behind streaming grid runs.
//!
//! A coordinator used to execute `POST /grid` while holding the one
//! `Fleet` mutex, which made every other read on the HTTP surface either
//! block or degrade (503s on `/nodes` and `/grid/trace`, a vanishing
//! `alive` field in `/healthz`). This module splits the two roles apart:
//!
//! - [`FleetView`] is the always-readable side — the latest registry
//!   snapshot and the most recent merged trace, published by whoever is
//!   driving a run (the dispatcher refreshes it as nodes probe and shards
//!   resolve) and read lock-briefly by every HTTP handler.
//! - [`RunHandle`] is one grid run's lifecycle: its id, its
//!   [`ProgressSink`] stream, and a condvar-signalled terminal state that
//!   sync callers block on and async callers poll.
//! - [`RunLedger`] owns every handle (and the run threads), hands out run
//!   ids, and answers "is anything running?" for `/healthz`.

use crate::coordinator::{FleetError, FleetRun};
use crate::progress::{ProgressEvent, ProgressSink};
use crate::registry::{NodeSnapshot, NodeState};
use serde_json::{Map, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The coordinator state that must stay readable while a run thread owns
/// the dispatch: the per-node registry snapshot and the last merged trace.
#[derive(Default)]
pub struct FleetView {
    nodes: Mutex<Vec<NodeSnapshot>>,
    last_trace: Mutex<Option<String>>,
}

impl FleetView {
    pub fn new() -> FleetView {
        FleetView::default()
    }

    /// Publish a fresh registry snapshot (dispatcher: after probes and
    /// resolutions; coordinator: at start and run end).
    pub fn set_nodes(&self, nodes: Vec<NodeSnapshot>) {
        *lock_or_recover(&self.nodes) = nodes;
    }

    /// The most recently published registry snapshot.
    pub fn nodes(&self) -> Vec<NodeSnapshot> {
        lock_or_recover(&self.nodes).clone()
    }

    /// How many nodes are not `Dead` in the latest snapshot.
    pub fn alive(&self) -> usize {
        lock_or_recover(&self.nodes)
            .iter()
            .filter(|n| n.state != NodeState::Dead)
            .count()
    }

    pub fn set_last_trace(&self, trace: String) {
        *lock_or_recover(&self.last_trace) = Some(trace);
    }

    /// The merged cross-node trace of the most recent finished run.
    pub fn last_trace(&self) -> Option<String> {
        lock_or_recover(&self.last_trace).clone()
    }
}

enum RunState {
    Running,
    Finished(Result<FleetRun, FleetError>),
}

/// One grid run: id, live progress stream, and terminal state.
pub struct RunHandle {
    id: u64,
    progress: Arc<ProgressSink>,
    state: Mutex<RunState>,
    done: Condvar,
}

impl RunHandle {
    fn new(id: u64, total_shards: usize) -> RunHandle {
        RunHandle {
            id,
            progress: Arc::new(ProgressSink::new(total_shards)),
            state: Mutex::new(RunState::Running),
            done: Condvar::new(),
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    /// The run's seq-numbered progress ledger (shared with the dispatcher).
    pub fn progress(&self) -> &Arc<ProgressSink> {
        &self.progress
    }

    /// Record the terminal state and wake every [`RunHandle::wait`]er.
    /// Called exactly once, by the run thread.
    pub fn finish(&self, result: Result<FleetRun, FleetError>) {
        let mut state = lock_or_recover(&self.state);
        *state = RunState::Finished(result);
        self.done.notify_all();
    }

    pub fn is_finished(&self) -> bool {
        !matches!(*lock_or_recover(&self.state), RunState::Running)
    }

    /// The terminal result, if the run has finished (clones — the ledger
    /// keeps the original so late `/grid/<id>/result` reads still answer).
    pub fn result(&self) -> Option<Result<FleetRun, FleetError>> {
        match &*lock_or_recover(&self.state) {
            RunState::Running => None,
            RunState::Finished(r) => Some(r.clone()),
        }
    }

    /// Block until the run finishes and return its result. This is the
    /// synchronous `POST /grid` wrapper: submit + wait.
    pub fn wait(&self) -> Result<FleetRun, FleetError> {
        let mut state = lock_or_recover(&self.state);
        loop {
            if let RunState::Finished(r) = &*state {
                return r.clone();
            }
            state = self.done.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The `GET /grid/<id>/status` document: run state, live counts, and
    /// every progress event past the `since` cursor (all of them for
    /// `since = 0`). Counts and events come from one [`ProgressSink`] read,
    /// so `seq` is the exact cursor for the next poll.
    pub fn status_body(&self, since: u64) -> String {
        let (counts, events) = self.progress.since(since);
        let mut m = Map::new();
        m.insert("run_id".to_string(), Value::from(self.id));
        let state = match &*lock_or_recover(&self.state) {
            RunState::Running => "running",
            RunState::Finished(Ok(_)) => "done",
            RunState::Finished(Err(e)) => {
                m.insert("error".to_string(), Value::from(e.to_string()));
                "failed"
            }
        };
        m.insert("state".to_string(), Value::from(state));
        m.insert("total".to_string(), Value::from(counts.total as u64));
        m.insert(
            "completed".to_string(),
            Value::from(counts.completed as u64),
        );
        m.insert("pending".to_string(), Value::from(counts.pending as u64));
        m.insert(
            "in_flight".to_string(),
            Value::from(counts.in_flight as u64),
        );
        m.insert("dispatched".to_string(), Value::from(counts.dispatched));
        m.insert("rescheduled".to_string(), Value::from(counts.rescheduled));
        m.insert("seq".to_string(), Value::from(counts.seq));
        m.insert(
            "events".to_string(),
            Value::Array(events.iter().map(ProgressEvent::to_value).collect()),
        );
        Value::Object(m).to_string()
    }
}

/// Every run the coordinator has accepted, plus the threads driving the
/// unfinished ones. Run ids are dense from 1.
#[derive(Default)]
pub struct RunLedger {
    runs: Mutex<Vec<Arc<RunHandle>>>,
    next_id: AtomicU64,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl RunLedger {
    pub fn new() -> RunLedger {
        RunLedger {
            runs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Mint a handle for a newly accepted run.
    pub fn create(&self, total_shards: usize) -> Arc<RunHandle> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let handle = Arc::new(RunHandle::new(id, total_shards));
        lock_or_recover(&self.runs).push(Arc::clone(&handle));
        handle
    }

    pub fn get(&self, id: u64) -> Option<Arc<RunHandle>> {
        lock_or_recover(&self.runs)
            .iter()
            .find(|h| h.id == id)
            .cloned()
    }

    /// Runs not yet finished — the `running` signal in `/healthz` and the
    /// `fleet_runs_active` gauge.
    pub fn active(&self) -> usize {
        lock_or_recover(&self.runs)
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    /// Lifetime accepted-run count.
    pub fn total(&self) -> u64 {
        self.next_id.load(Ordering::SeqCst).saturating_sub(1)
    }

    /// Track a run thread so shutdown can drain it.
    pub fn note_thread(&self, handle: JoinHandle<()>) {
        lock_or_recover(&self.threads).push(handle);
    }

    /// Join every run thread (shutdown path: no run may outlive the
    /// embedded daemons it dispatches to).
    pub fn join_all(&self) {
        let threads: Vec<JoinHandle<()>> = std::mem::take(&mut *lock_or_recover(&self.threads));
        for t in threads {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(state: NodeState) -> NodeSnapshot {
        NodeSnapshot {
            addr: "127.0.0.1:1".to_string(),
            state,
            in_flight: 0,
            workers: 1,
            ewma_us: None,
            dispatched: 0,
            completed: 0,
            failures: 0,
        }
    }

    #[test]
    fn view_tracks_alive_and_trace() {
        let view = FleetView::new();
        assert_eq!(view.alive(), 0);
        assert!(view.last_trace().is_none());
        view.set_nodes(vec![
            snapshot(NodeState::Healthy),
            snapshot(NodeState::Dead),
        ]);
        assert_eq!(view.alive(), 1);
        assert_eq!(view.nodes().len(), 2);
        view.set_last_trace("{}".to_string());
        assert_eq!(view.last_trace().as_deref(), Some("{}"));
    }

    #[test]
    fn ledger_ids_are_dense_and_lookup_works() {
        let ledger = RunLedger::new();
        let a = ledger.create(4);
        let b = ledger.create(2);
        assert_eq!(a.id(), 1);
        assert_eq!(b.id(), 2);
        assert_eq!(ledger.total(), 2);
        assert_eq!(ledger.active(), 2);
        assert!(ledger.get(1).is_some());
        assert!(ledger.get(99).is_none());
        a.finish(Err(FleetError::NoNodes));
        assert_eq!(ledger.active(), 1);
        assert!(a.is_finished());
        assert!(matches!(a.result(), Some(Err(FleetError::NoNodes))));
    }

    #[test]
    fn wait_unblocks_on_finish_from_another_thread() {
        let ledger = RunLedger::new();
        let h = ledger.create(1);
        let waiter = Arc::clone(&h);
        let t = std::thread::spawn(move || waiter.wait());
        std::thread::sleep(std::time::Duration::from_millis(20));
        h.finish(Err(FleetError::NoNodes));
        let result = t.join().unwrap();
        assert!(matches!(result, Err(FleetError::NoNodes)));
    }

    #[test]
    fn status_value_carries_state_counts_and_events() {
        let ledger = RunLedger::new();
        let h = ledger.create(2);
        h.progress().note_dispatched(0, 0, 1, 1);
        let v: Value = serde_json::from_str(&h.status_body(0)).unwrap();
        assert_eq!(v["state"], "running");
        assert_eq!(v["total"].as_u64(), Some(2));
        assert_eq!(v["in_flight"].as_u64(), Some(1));
        assert_eq!(v["pending"].as_u64(), Some(1));
        assert_eq!(v["events"].as_array().unwrap().len(), 1);
        assert!(v.get("error").is_none());

        h.finish(Err(FleetError::NoNodes));
        let v: Value = serde_json::from_str(&h.status_body(1)).unwrap();
        assert_eq!(v["state"], "failed");
        assert_eq!(v["error"], "no worker nodes configured");
        assert!(v["events"].as_array().unwrap().is_empty());
    }
}
