//! The dispatch loop: pending shards → capacity/latency-weighted nodes →
//! collected reports, with fault-aware rescheduling.
//!
//! Single-threaded by design — worker daemons provide the parallelism; the
//! coordinator only needs to keep every node's in-flight window full. One
//! pass of the loop (1) probes every node on a cadence — refreshing its
//! advertised load signals and reviving restarted daemons, (2) dispatches
//! pending shards to the node with the best estimated completion time
//! (`(in_flight + 1) × latency-EWMA ÷ workers`; see
//! [`crate::registry::SchedPolicy`]) under its capacity-scaled in-flight
//! cap, (3) polls in-flight jobs and resolves them: completed reports are
//! collected, while worker-reported failures, shard timeouts, and
//! transport errors send the shard back to the queue (charging the node)
//! until its attempt budget runs out.
//!
//! Rescheduling never loses work and never duplicates results: a shard is
//! either pending, in flight on exactly one node, or resolved, and results
//! are slotted by canonical shard id so the merge cannot double-count a
//! job that was rescheduled after the original node silently finished it.

use crate::client::{JobPoll, WorkerError};
use crate::coordinator::FleetError;
use crate::planner::{Shard, ShardPlan};
use crate::progress::ProgressSink;
use crate::registry::{NodeRegistry, NodeState, SchedPolicy};
use crate::runs::FleetView;
use proof_obs::{Counter, FieldValue, FlightRecorder, Level, MetricsRegistry, Tracer};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Dispatch-loop tuning. Defaults suit local daemons; raise the timeouts
/// for real networks.
#[derive(Debug, Clone)]
pub struct DispatcherConfig {
    /// How the next node is picked for a pending shard. Weighted (the
    /// default) scores estimated completion time from advertised worker
    /// counts and observed shard latency; least-loaded is the legacy
    /// homogeneous-fleet policy.
    pub policy: SchedPolicy,
    /// Base limit on unresolved shards submitted to one node at a time.
    /// The weighted policy scales it by the node's advertised workers.
    pub max_in_flight_per_node: usize,
    /// Wall-clock budget for one shard on one node, submission to report;
    /// past it the shard is rescheduled and the node charged.
    pub shard_timeout: Duration,
    /// Pause between dispatch-loop passes when nothing resolved.
    pub poll_interval: Duration,
    /// How often every node is re-probed: dead nodes for revival, live
    /// ones to refresh the advertised load signals the scheduler uses.
    pub probe_interval: Duration,
    /// Total attempts one shard may consume across all nodes.
    pub max_shard_attempts: u32,
    /// Re-advertise the other nodes' cache endpoints to a node that comes
    /// back from the dead, so a restarted (cold) daemon serves its next
    /// shard from a warm peer's remote tier instead of re-simulating.
    pub advertise_peer_cache: bool,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        DispatcherConfig {
            policy: SchedPolicy::default(),
            max_in_flight_per_node: 2,
            shard_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(5),
            probe_interval: Duration::from_millis(250),
            max_shard_attempts: 3,
            advertise_peer_cache: true,
        }
    }
}

/// Fleet-level counters on the shared metrics registry (`GET /metrics` on
/// the coordinator renders them; per-node counters live in the
/// [`NodeRegistry`] snapshot).
pub struct FleetCounters {
    pub dispatched: Arc<Counter>,
    pub completed: Arc<Counter>,
    pub rescheduled: Arc<Counter>,
    pub shard_failures: Arc<Counter>,
    pub probes: Arc<Counter>,
    pub probe_failures: Arc<Counter>,
    /// Dispatch decisions made by the weighted scheduler (0 under
    /// `--sched least-loaded`).
    pub weighted_picks: Arc<Counter>,
}

impl FleetCounters {
    pub fn register(registry: &MetricsRegistry) -> FleetCounters {
        FleetCounters {
            dispatched: registry.counter("fleet_dispatched"),
            completed: registry.counter("fleet_completed"),
            rescheduled: registry.counter("fleet_rescheduled"),
            shard_failures: registry.counter("fleet_shard_failures"),
            probes: registry.counter("fleet_probes"),
            probe_failures: registry.counter("fleet_probe_failures"),
            weighted_picks: registry.counter("fleet_weighted_picks"),
        }
    }
}

/// Where one shard finally resolved: the node, the worker-side job id, and
/// how many dispatch attempts it consumed. This is the join key for the
/// cross-node trace merge — the worker's job span carries the same job id.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Canonical shard (cell) index.
    pub shard: usize,
    /// Registry index of the node that completed it.
    pub node: usize,
    /// The completing node's job id for this shard.
    pub job_id: u64,
    /// Dispatch attempts consumed across all nodes.
    pub attempts: u32,
}

/// What one grid run did, beyond the reports themselves. Counts are
/// per-run (the [`FleetCounters`] accumulate across runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// `(shard id, report JSON)` for every cell, unordered.
    pub results: Vec<(usize, String)>,
    /// Per-shard completion records, in completion order (unordered with
    /// respect to shard ids).
    pub shards: Vec<ShardReport>,
    pub dispatched: u64,
    pub rescheduled: u64,
    pub probes: u64,
    pub probe_failures: u64,
}

struct InFlight {
    shard: Shard,
    attempts: u32,
    node: usize,
    job_id: u64,
    deadline: Instant,
    /// Submission time, for the per-node shard-latency histogram.
    started: Instant,
}

struct PendingShard {
    shard: Shard,
    /// Dispatch attempts already consumed.
    attempts: u32,
    last_error: Option<String>,
}

/// Everything one run's dispatch reports through: counters, tracing,
/// flight recorder, the run's [`ProgressSink`], and the shared
/// [`FleetView`] the HTTP surface reads mid-run.
pub struct DispatchCtx {
    pub counters: FleetCounters,
    pub tracer: Arc<Tracer>,
    /// The run's trace id.
    pub trace: u64,
    /// The `fleet_run` root span id, propagated to workers as the
    /// `X-Proof-Trace` parent so their job spans join the fleet trace.
    pub parent_span: u64,
    /// Registry for the per-node `node<i>_shard_us` latency histograms.
    pub metrics: Arc<MetricsRegistry>,
    /// Flight recorder shared with the coordinator: dispatches,
    /// reschedules, and node health transitions land here.
    pub flight: Arc<FlightRecorder>,
    /// The run's seq-numbered progress ledger — every dispatch,
    /// completion, and reschedule is published here as it resolves.
    pub progress: Arc<ProgressSink>,
    /// Shared registry view for lock-free `/nodes` and `/healthz` reads
    /// while this dispatch owns the registry.
    pub view: Arc<FleetView>,
}

/// The dispatch loop itself. Owns tuning and the run context; borrow the
/// [`NodeRegistry`] per run.
pub struct Dispatcher {
    pub config: DispatcherConfig,
    ctx: DispatchCtx,
}

impl Dispatcher {
    pub fn new(config: DispatcherConfig, ctx: DispatchCtx) -> Dispatcher {
        Dispatcher { config, ctx }
    }

    /// Record a flight event when `before` differs from node `i`'s current
    /// health state.
    fn note_health_transition(&self, registry: &NodeRegistry, i: usize, before: NodeState) {
        let now = registry.node(i).state;
        if now != before {
            self.ctx.flight.record(
                "health",
                format!("node {i} {} -> {}", before.as_str(), now.as_str()),
                vec![
                    ("node", FieldValue::U64(i as u64)),
                    ("from", FieldValue::Str(before.as_str().to_string())),
                    ("to", FieldValue::Str(now.as_str().to_string())),
                ],
            );
        }
    }

    /// Run the plan to completion. Fails fast when every node is dead with
    /// work still pending, or when one shard exhausts its attempt budget.
    pub fn run(
        &self,
        plan: &ShardPlan,
        registry: &mut NodeRegistry,
    ) -> Result<DispatchOutcome, FleetError> {
        if registry.is_empty() {
            return Err(FleetError::NoNodes);
        }
        let mut outcome = DispatchOutcome::default();
        let mut pending: VecDeque<PendingShard> = plan
            .shards
            .iter()
            .cloned()
            .map(|shard| PendingShard {
                shard,
                attempts: 0,
                last_error: None,
            })
            .collect();
        let mut inflight: Vec<InFlight> = Vec::new();
        let mut last_probe: Vec<Instant> = Vec::new();

        // pre-register every node's shard-latency histogram and EWMA
        // gauge so the federated exposition carries the series even
        // before (or without) completions on that node
        for i in 0..registry.len() {
            self.ctx.metrics.histogram(&format!("node{i}_shard_us"));
            self.ctx.metrics.gauge(&format!("node{i}_ewma_us"));
        }

        // opening probe: seed health and the per-run load picture
        for i in 0..registry.len() {
            self.probe(registry, i, &mut outcome);
            last_probe.push(Instant::now());
        }
        self.ctx.view.set_nodes(registry.snapshot());

        while !pending.is_empty() || !inflight.is_empty() {
            let now = Instant::now();
            // probe pass on the cadence, for every node: dead ones so a
            // restarted daemon rejoins, live ones so the scheduler's
            // advertised load signals (workers, queue capacity) stay fresh
            for (i, last) in last_probe.iter_mut().enumerate() {
                if now.duration_since(*last) >= self.config.probe_interval {
                    self.probe(registry, i, &mut outcome);
                    *last = Instant::now();
                }
            }

            self.dispatch_pending(registry, &mut pending, &mut inflight, &mut outcome)?;

            if !pending.is_empty() && inflight.is_empty() && registry.alive() == 0 {
                return Err(FleetError::AllNodesDead {
                    unresolved: pending.len(),
                });
            }

            let resolved =
                self.poll_inflight(registry, &mut pending, &mut inflight, &mut outcome)?;
            // republish the registry view every pass so `/nodes` and
            // `/healthz` track health transitions and in-flight counts live
            self.ctx.view.set_nodes(registry.snapshot());
            if !resolved {
                std::thread::sleep(self.config.poll_interval);
            }
        }
        self.ctx.view.set_nodes(registry.snapshot());
        Ok(outcome)
    }

    fn probe(&self, registry: &mut NodeRegistry, i: usize, outcome: &mut DispatchOutcome) {
        let client = registry.client(i).clone();
        let state_before = registry.node(i).state;
        let was_dead = state_before == NodeState::Dead;
        let health = client.probe();
        let healthy = health.is_ok();
        if let Ok(h) = &health {
            registry.note_health(i, h);
        }
        registry.note_probe(i, healthy);
        self.note_health_transition(registry, i, state_before);
        self.ctx.counters.probes.inc();
        outcome.probes += 1;
        if !healthy {
            self.ctx.counters.probe_failures.inc();
            outcome.probe_failures += 1;
            self.ctx.tracer.event(
                Level::Warn,
                "proof_fleet",
                format!("probe of {} failed", client.addr),
                vec![("node", FieldValue::U64(i as u64))],
            );
        } else if was_dead && self.config.advertise_peer_cache && registry.len() > 1 {
            // a revived node is likely a restarted (cold) daemon: re-point
            // its remote cache tier at the surviving warm peers
            let peers: Vec<std::net::SocketAddr> = (0..registry.len())
                .filter(|&j| j != i)
                .map(|j| registry.client(j).addr)
                .collect();
            if let Err(e) = client.advertise_peers(&peers) {
                self.ctx.tracer.event(
                    Level::Warn,
                    "proof_fleet",
                    format!(
                        "peer-cache advertisement to revived {} failed: {e}",
                        client.addr
                    ),
                    vec![("node", FieldValue::U64(i as u64))],
                );
            }
        }
    }

    /// Push pending shards onto live nodes until the queue drains or every
    /// node is at its cap / backing off.
    fn dispatch_pending(
        &self,
        registry: &mut NodeRegistry,
        pending: &mut VecDeque<PendingShard>,
        inflight: &mut Vec<InFlight>,
        outcome: &mut DispatchOutcome,
    ) -> Result<(), FleetError> {
        while !pending.is_empty() {
            let now = Instant::now();
            let Some(node) =
                registry.pick_node(self.config.policy, self.config.max_in_flight_per_node, now)
            else {
                // every node busy, dead, or backing off — or the weighted
                // policy is holding the shard for the projected-fastest
                // node rather than feeding a slower one
                return Ok(());
            };
            if self.config.policy == SchedPolicy::Weighted {
                self.ctx.counters.weighted_picks.inc();
            }
            let est_us = registry.est_shard_us(node);
            let mut entry = pending.pop_front().expect("non-empty");
            if entry.attempts >= self.config.max_shard_attempts {
                self.ctx.counters.shard_failures.inc();
                return Err(FleetError::ShardFailed {
                    shard: entry.shard.id,
                    attempts: entry.attempts,
                    last_error: entry.last_error.unwrap_or_else(|| "unknown".to_string()),
                });
            }
            let client = registry.client(node).clone();
            match client.submit_traced(
                &entry.shard.cell.to_job_value(),
                Some((self.ctx.trace, self.ctx.parent_span)),
            ) {
                Ok(job_id) => {
                    registry.note_dispatch(node);
                    self.ctx.counters.dispatched.inc();
                    outcome.dispatched += 1;
                    entry.attempts += 1;
                    self.ctx.tracer.event(
                        Level::Debug,
                        "proof_fleet",
                        format!("shard {} -> {} (job {job_id})", entry.shard.id, client.addr),
                        vec![
                            ("shard", FieldValue::U64(entry.shard.id as u64)),
                            ("attempt", FieldValue::U64(u64::from(entry.attempts))),
                        ],
                    );
                    self.ctx.flight.record(
                        "dispatch",
                        format!("shard {} -> node {node} (job {job_id})", entry.shard.id),
                        vec![
                            ("shard", FieldValue::U64(entry.shard.id as u64)),
                            ("node", FieldValue::U64(node as u64)),
                            ("job", FieldValue::U64(job_id)),
                            ("attempt", FieldValue::U64(u64::from(entry.attempts))),
                            (
                                "policy",
                                FieldValue::Str(self.config.policy.as_str().to_string()),
                            ),
                            ("est_us", FieldValue::U64(est_us)),
                        ],
                    );
                    self.ctx
                        .progress
                        .note_dispatched(entry.shard.id, node, job_id, entry.attempts);
                    inflight.push(InFlight {
                        shard: entry.shard,
                        attempts: entry.attempts,
                        node,
                        job_id,
                        deadline: now + self.config.shard_timeout,
                        started: now,
                    });
                }
                Err(WorkerError::Busy { retry_after_s }) => {
                    let hold = Duration::from_secs(retry_after_s.unwrap_or(1).max(1));
                    registry.note_backoff(node, now + hold, false);
                    pending.push_front(entry); // not an attempt, not a failure
                }
                Err(e) => {
                    let state_before = registry.node(node).state;
                    registry.note_failure(node, false);
                    self.note_health_transition(registry, node, state_before);
                    self.ctx.tracer.event(
                        Level::Warn,
                        "proof_fleet",
                        format!("submit to {} failed: {e}", client.addr),
                        vec![("shard", FieldValue::U64(entry.shard.id as u64))],
                    );
                    self.ctx.flight.record(
                        "reschedule",
                        format!("shard {} submit to node {node} failed: {e}", entry.shard.id),
                        vec![
                            ("shard", FieldValue::U64(entry.shard.id as u64)),
                            ("node", FieldValue::U64(node as u64)),
                        ],
                    );
                    entry.last_error = Some(e.to_string());
                    // the shard is being re-queued onto the survivors; it
                    // never reached the node, so nothing leaves flight
                    self.ctx.counters.rescheduled.inc();
                    outcome.rescheduled += 1;
                    self.ctx.progress.note_rescheduled(
                        entry.shard.id,
                        node,
                        0,
                        entry.attempts,
                        false,
                    );
                    pending.push_front(entry);
                    if registry.alive() == 0 && inflight.is_empty() {
                        return Err(FleetError::AllNodesDead {
                            unresolved: pending.len(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Poll every in-flight job once. Returns whether anything resolved
    /// (completed or rescheduled) this pass.
    fn poll_inflight(
        &self,
        registry: &mut NodeRegistry,
        pending: &mut VecDeque<PendingShard>,
        inflight: &mut Vec<InFlight>,
        outcome: &mut DispatchOutcome,
    ) -> Result<bool, FleetError> {
        // `Keep` leaves the job in flight; the other arms resolve it.
        enum Resolution {
            Keep,
            Done(String),
            Fail { why: String, timed_out: bool },
        }
        let mut resolved_any = false;
        let mut i = 0;
        while i < inflight.len() {
            let now = Instant::now();
            let entry = &inflight[i];
            let client = registry.client(entry.node).clone();
            let resolution = match client.poll(entry.job_id) {
                Ok(JobPoll::Done) => match client.report(entry.job_id) {
                    Ok(body) => Resolution::Done(body),
                    // the report GET itself backpressured: the artifact
                    // exists, fetch it next pass (deadline still applies)
                    Err(WorkerError::Busy { .. }) => Resolution::Keep,
                    Err(e) => Resolution::Fail {
                        why: e.to_string(),
                        timed_out: false,
                    },
                },
                Ok(JobPoll::Failed(msg)) => Resolution::Fail {
                    why: msg,
                    timed_out: false,
                },
                // still running, or the status GET backpressured (node
                // alive, just saturated) — either way the shard stays in
                // flight and its deadline keeps ticking below
                Ok(JobPoll::Pending) | Err(WorkerError::Busy { .. }) => Resolution::Keep,
                // unreachable or protocol breakage (e.g. restarted daemon
                // that lost the job registry): node died mid-job
                Err(e) => Resolution::Fail {
                    why: e.to_string(),
                    timed_out: false,
                },
            };
            // the deadline governs every non-resolving outcome: a node
            // that answers only 429s must still release its shard at
            // `shard_timeout`, exactly like one that stays Pending
            let resolution = match resolution {
                Resolution::Keep if now >= entry.deadline => Resolution::Fail {
                    why: format!(
                        "shard timeout after {:?} on {}",
                        self.config.shard_timeout, client.addr
                    ),
                    timed_out: true,
                },
                r => r,
            };
            match resolution {
                Resolution::Keep => i += 1,
                Resolution::Done(report) => {
                    let entry = inflight.swap_remove(i);
                    registry.note_success(entry.node);
                    self.ctx.counters.completed.inc();
                    let shard_us = entry
                        .started
                        .elapsed()
                        .as_micros()
                        .min(u128::from(u64::MAX)) as u64;
                    self.ctx
                        .metrics
                        .histogram(&format!("node{}_shard_us", entry.node))
                        .record_us(shard_us);
                    let ewma = registry.note_latency(entry.node, shard_us);
                    self.ctx
                        .metrics
                        .gauge(&format!("node{}_ewma_us", entry.node))
                        .set(ewma);
                    let mut span = self.ctx.tracer.span_in(self.ctx.trace, "fleet_shard");
                    span.field("shard", entry.shard.id as u64);
                    span.field("node", entry.node as u64);
                    span.field("attempts", u64::from(entry.attempts));
                    span.field("status", "done");
                    span.finish();
                    let record = ShardReport {
                        shard: entry.shard.id,
                        node: entry.node,
                        job_id: entry.job_id,
                        attempts: entry.attempts,
                    };
                    self.ctx.progress.note_completed(&record);
                    outcome.shards.push(record);
                    outcome.results.push((entry.shard.id, report));
                    resolved_any = true;
                }
                Resolution::Fail { why, timed_out } => {
                    let entry = inflight.swap_remove(i);
                    let state_before = registry.node(entry.node).state;
                    registry.note_failure(entry.node, true);
                    self.note_health_transition(registry, entry.node, state_before);
                    if timed_out {
                        // charge the full elapsed time to the node's
                        // latency estimate — without this a wedged-but-
                        // healthy node keeps winning weighted picks and
                        // burns the shard's whole attempt budget
                        let elapsed_us = entry
                            .started
                            .elapsed()
                            .as_micros()
                            .min(u128::from(u64::MAX))
                            as u64;
                        let ewma = registry.note_latency(entry.node, elapsed_us);
                        self.ctx
                            .metrics
                            .gauge(&format!("node{}_ewma_us", entry.node))
                            .set(ewma);
                    }
                    self.ctx.flight.record(
                        "reschedule",
                        format!(
                            "shard {} on node {} rescheduling: {why}",
                            entry.shard.id, entry.node
                        ),
                        vec![
                            ("shard", FieldValue::U64(entry.shard.id as u64)),
                            ("node", FieldValue::U64(entry.node as u64)),
                        ],
                    );
                    self.ctx.tracer.event(
                        Level::Warn,
                        "proof_fleet",
                        format!(
                            "shard {} on node {} rescheduling: {why}",
                            entry.shard.id, entry.node
                        ),
                        vec![
                            ("shard", FieldValue::U64(entry.shard.id as u64)),
                            ("node", FieldValue::U64(entry.node as u64)),
                        ],
                    );
                    if entry.attempts >= self.config.max_shard_attempts {
                        self.ctx.counters.shard_failures.inc();
                        return Err(FleetError::ShardFailed {
                            shard: entry.shard.id,
                            attempts: entry.attempts,
                            last_error: why,
                        });
                    }
                    self.ctx.counters.rescheduled.inc();
                    outcome.rescheduled += 1;
                    self.ctx.progress.note_rescheduled(
                        entry.shard.id,
                        entry.node,
                        entry.job_id,
                        entry.attempts,
                        true,
                    );
                    pending.push_back(PendingShard {
                        shard: entry.shard,
                        attempts: entry.attempts,
                        last_error: Some(why),
                    });
                    resolved_any = true;
                }
            }
        }
        Ok(resolved_any)
    }
}
