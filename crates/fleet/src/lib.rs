//! proof-fleet: a sharded multi-node profiling coordinator.
//!
//! PRoof's evaluation is a large grid — models × backends × platforms ×
//! precisions × batch sizes (paper Tables 3–5) — and a single `proof-serve`
//! daemon works through it one bounded queue at a time. This crate scales
//! that grid out: a [`GridSpec`](proof_core::GridSpec) is expanded into
//! canonically ordered shards ([`planner`]), dispatched over the existing
//! HTTP JSON API to a registry of worker daemons ([`registry`], [`client`],
//! [`dispatcher`]) — by default capacity/latency-weighted
//! ([`registry::SchedPolicy`]): each candidate is scored by estimated
//! completion time from its advertised worker count and an EWMA of
//! observed shard latency, so heterogeneous fleets keep fast nodes fed —
//! and the per-cell reports are reassembled ([`merger`]) into one combined
//! artifact that is **byte-identical** to a single-node run of the same
//! spec and seed, regardless of scheduler choice.
//!
//! Fault model: a node that times out, keeps answering 429/5xx past its
//! retry budget, or dies mid-job has its shards requeued onto surviving
//! nodes; health probes revive nodes that come back. Every decision is
//! counted on a `proof-obs` metrics registry and traced as a fleet span
//! tree, so `GET /metrics` on the coordinator ([`server`]) shows dispatch,
//! reschedule, and probe activity per node.
//!
//! Grid runs are job-style: [`Fleet::submit_grid`] returns a
//! [`RunHandle`] immediately while a dedicated run thread owns the
//! dispatch, publishing per-shard progress through a seq-numbered
//! [`ProgressSink`] ([`progress`], [`runs`]); [`Fleet::run_grid`] is the
//! synchronous submit-and-wait wrapper. The coordinator HTTP surface
//! ([`server`]) exposes both forms (`POST /grid`, `POST /grid/submit`,
//! `GET /grid/<id>/status?since=<seq>`, `GET /grid/<id>/result`) and stays
//! fully readable mid-run via the shared [`FleetView`].
//!
//! ```no_run
//! use proof_fleet::{Fleet, FleetConfig};
//! use proof_core::GridSpec;
//!
//! let spec = GridSpec::from_value(
//!     &serde_json::from_str(r#"{"model":"resnet-50","platform":"a100","batches":[1,2,4]}"#)
//!         .unwrap(),
//! )
//! .unwrap();
//! // coordinator + two embedded local daemons
//! let fleet = Fleet::start(FleetConfig::local(2)).unwrap();
//! // streaming: watch shard completions while the run thread dispatches
//! let handle = fleet.submit_grid(&spec).unwrap();
//! let run = handle.wait().unwrap();
//! assert!(run.merged.contains("\"cells\""));
//! fleet.shutdown();
//! ```

pub mod client;
pub mod coordinator;
pub mod dispatcher;
pub mod merger;
pub mod planner;
pub mod progress;
pub mod registry;
pub mod runs;
pub mod server;
pub mod trace;

pub use client::{CoordinatorClient, JobPoll, RunResult, WorkerClient, WorkerError, WorkerHealth};
pub use coordinator::{run_grid_local, Fleet, FleetConfig, FleetError, FleetRun};
pub use dispatcher::{
    DispatchCtx, DispatchOutcome, Dispatcher, DispatcherConfig, FleetCounters, ShardReport,
};
pub use merger::{merge_run, MergeSummary};
pub use planner::{plan_shards, Shard, ShardPlan};
pub use progress::{ProgressCounts, ProgressEvent, ProgressKind, ProgressSink};
pub use registry::{NodeRegistry, NodeSnapshot, NodeState, SchedPolicy};
pub use runs::{FleetView, RunHandle, RunLedger};
pub use server::{FleetServer, FleetServerConfig};
pub use trace::merge_fleet_trace;
