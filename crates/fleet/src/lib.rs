//! proof-fleet: a sharded multi-node profiling coordinator.
//!
//! PRoof's evaluation is a large grid — models × backends × platforms ×
//! precisions × batch sizes (paper Tables 3–5) — and a single `proof-serve`
//! daemon works through it one bounded queue at a time. This crate scales
//! that grid out: a [`GridSpec`](proof_core::GridSpec) is expanded into
//! canonically ordered shards ([`planner`]), dispatched over the existing
//! HTTP JSON API to a registry of worker daemons ([`registry`], [`client`],
//! [`dispatcher`]) — by default capacity/latency-weighted
//! ([`registry::SchedPolicy`]): each candidate is scored by estimated
//! completion time from its advertised worker count and an EWMA of
//! observed shard latency, so heterogeneous fleets keep fast nodes fed —
//! and the per-cell reports are reassembled ([`merger`]) into one combined
//! artifact that is **byte-identical** to a single-node run of the same
//! spec and seed, regardless of scheduler choice.
//!
//! Fault model: a node that times out, keeps answering 429/5xx past its
//! retry budget, or dies mid-job has its shards requeued onto surviving
//! nodes; health probes revive nodes that come back. Every decision is
//! counted on a `proof-obs` metrics registry and traced as a fleet span
//! tree, so `GET /metrics` on the coordinator ([`server`]) shows dispatch,
//! reschedule, and probe activity per node.
//!
//! ```no_run
//! use proof_fleet::{Fleet, FleetConfig};
//! use proof_core::GridSpec;
//!
//! let spec = GridSpec::from_value(
//!     &serde_json::from_str(r#"{"model":"resnet-50","platform":"a100","batches":[1,2,4]}"#)
//!         .unwrap(),
//! )
//! .unwrap();
//! // coordinator + two embedded local daemons
//! let mut fleet = Fleet::start(FleetConfig::local(2)).unwrap();
//! let run = fleet.run_grid(&spec).unwrap();
//! assert!(run.merged.contains("\"cells\""));
//! fleet.shutdown();
//! ```

pub mod client;
pub mod coordinator;
pub mod dispatcher;
pub mod merger;
pub mod planner;
pub mod registry;
pub mod server;
pub mod trace;

pub use client::{JobPoll, WorkerClient, WorkerError, WorkerHealth};
pub use coordinator::{run_grid_local, Fleet, FleetConfig, FleetError, FleetRun};
pub use dispatcher::{DispatchOutcome, Dispatcher, DispatcherConfig, FleetCounters, ShardReport};
pub use merger::{merge_run, MergeSummary};
pub use planner::{plan_shards, Shard, ShardPlan};
pub use registry::{NodeRegistry, NodeSnapshot, NodeState, SchedPolicy};
pub use server::{FleetServer, FleetServerConfig};
pub use trace::merge_fleet_trace;
