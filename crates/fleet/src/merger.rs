//! Result merging: shard reports → the one combined artifact.
//!
//! The heavy lifting (slotting by canonical shard id, duplicate/missing
//! detection, sweep reassembly, sorted-key serialization) lives in
//! [`proof_core::merge_cells`] so the coordinator and any library user
//! share one implementation; this module adds the fleet-side summary used
//! by the CLI and the coordinator HTTP surface.

use proof_core::{merge_cells, GridSpec, ProofError};
use serde_json::Value;

/// What the merged artifact contains, for human-facing summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeSummary {
    pub cells: usize,
    /// Whether the grid collapsed to a batch sweep (single model/platform).
    pub has_sweep: bool,
}

/// Merge shard results into the combined artifact. Exactly one report per
/// shard id is required; order does not matter (the merge slots
/// canonically), which is what makes the output independent of dispatch
/// interleaving.
pub fn merge_run(spec: &GridSpec, results: &[(usize, String)]) -> Result<String, ProofError> {
    merge_cells(spec, results)
}

/// Inspect a merged artifact produced by [`merge_run`].
pub fn summarize(merged: &str) -> Result<MergeSummary, ProofError> {
    let v: Value = serde_json::from_str(merged)
        .map_err(|e| ProofError::Serialize(format!("merged artifact is not JSON: {e}")))?;
    let cells = v
        .get("cells")
        .and_then(Value::as_array)
        .map(Vec::len)
        .ok_or_else(|| ProofError::Serialize("merged artifact without cells".into()))?;
    Ok(MergeSummary {
        cells,
        has_sweep: v.get("sweep").is_some_and(|s| !s.is_null()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::run_grid_local;
    use proof_core::GridSpec;

    #[test]
    fn summary_reads_cells_and_sweep() {
        let spec = GridSpec::from_value(
            &serde_json::from_str(
                r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":1}"#,
            )
            .unwrap(),
        )
        .unwrap();
        let merged = run_grid_local(&spec).unwrap();
        let s = summarize(&merged).unwrap();
        assert_eq!(s.cells, 2);
        assert!(s.has_sweep);
    }

    #[test]
    fn summarize_rejects_non_artifacts() {
        assert!(summarize("{}").is_err());
        assert!(summarize("not json").is_err());
    }
}
