//! The per-run progress ledger: a seq-numbered stream of shard lifecycle
//! events the dispatcher publishes as each shard resolves.
//!
//! A [`ProgressSink`] is shared (`Arc`) between the run thread executing
//! [`crate::dispatcher::Dispatcher::run`] and every reader of the run —
//! the coordinator's `GET /grid/<id>/status` endpoint and `proof fleet
//! sweep --watch`. Each published event gets the next sequence number
//! (starting at 1, never reused, never regressing), so a client holding a
//! `since` cursor reads the stream monotonically: every poll returns only
//! events with `seq > since`, and replaying the events in seq order
//! reconstructs the run exactly — including shards that bounced between
//! nodes, because a reschedule is its own event rather than a mutation of
//! the dispatch that preceded it.

use crate::dispatcher::ShardReport;
use serde_json::{Map, Value};
use std::sync::Mutex;

/// What happened to one shard at one point in the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressKind {
    /// Submitted to a node; the shard is now in flight there.
    Dispatched,
    /// The node returned the shard's report; terminal for the shard.
    Completed,
    /// The shard left its node unresolved (failure, timeout, or a failed
    /// submission) and went back to the pending queue.
    Rescheduled,
}

impl ProgressKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ProgressKind::Dispatched => "dispatched",
            ProgressKind::Completed => "completed",
            ProgressKind::Rescheduled => "rescheduled",
        }
    }
}

/// One seq-numbered entry in the run's progress stream. `Completed`
/// events carry the full [`ShardReport`] fields, so a client that only
/// reads the stream still ends up with every completion record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Position in the run's stream: 1-based, strictly increasing.
    pub seq: u64,
    pub kind: ProgressKind,
    /// Canonical shard (cell) index.
    pub shard: usize,
    /// Registry index of the node involved.
    pub node: usize,
    /// The node's job id (0 when the submission itself failed, so no job
    /// was ever created).
    pub job_id: u64,
    /// Dispatch attempts the shard had consumed when the event fired.
    pub attempts: u32,
}

impl ProgressEvent {
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("seq".to_string(), Value::from(self.seq));
        m.insert("kind".to_string(), Value::from(self.kind.as_str()));
        m.insert("shard".to_string(), Value::from(self.shard as u64));
        m.insert("node".to_string(), Value::from(self.node as u64));
        m.insert("job_id".to_string(), Value::from(self.job_id));
        m.insert(
            "attempts".to_string(),
            Value::from(u64::from(self.attempts)),
        );
        Value::Object(m)
    }
}

/// Point-in-time totals derived from the stream. `pending + in_flight +
/// completed == total` at every observable instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressCounts {
    /// Shards in the plan.
    pub total: usize,
    /// Shards resolved with a report.
    pub completed: usize,
    /// Shards currently submitted to a node.
    pub in_flight: usize,
    /// Shards waiting for a node (never dispatched, or bounced back).
    pub pending: usize,
    /// Lifetime dispatch count (rescheduled shards dispatch again).
    pub dispatched: u64,
    /// How many times a shard bounced back to the queue.
    pub rescheduled: u64,
    /// Highest sequence number published so far (0 before any event).
    pub seq: u64,
}

struct SinkState {
    completed: usize,
    in_flight: usize,
    dispatched: u64,
    rescheduled: u64,
    /// The full stream; `events[i].seq == i as u64 + 1`, which makes the
    /// `since` cursor a plain slice index.
    events: Vec<ProgressEvent>,
}

/// Seq-numbered, `Arc`-shared progress ledger for one grid run.
pub struct ProgressSink {
    total: usize,
    state: Mutex<SinkState>,
}

impl ProgressSink {
    pub fn new(total: usize) -> ProgressSink {
        ProgressSink {
            total,
            state: Mutex::new(SinkState {
                completed: 0,
                in_flight: 0,
                dispatched: 0,
                rescheduled: 0,
                events: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SinkState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(
        &self,
        state: &mut SinkState,
        kind: ProgressKind,
        shard: usize,
        node: usize,
        job_id: u64,
        attempts: u32,
    ) {
        let seq = state.events.len() as u64 + 1;
        state.events.push(ProgressEvent {
            seq,
            kind,
            shard,
            node,
            job_id,
            attempts,
        });
    }

    /// A shard was submitted to `node` as `job_id`.
    pub fn note_dispatched(&self, shard: usize, node: usize, job_id: u64, attempts: u32) {
        let mut s = self.lock();
        s.dispatched += 1;
        s.in_flight += 1;
        self.push(
            &mut s,
            ProgressKind::Dispatched,
            shard,
            node,
            job_id,
            attempts,
        );
    }

    /// A shard resolved with a report.
    pub fn note_completed(&self, report: &ShardReport) {
        let mut s = self.lock();
        s.completed += 1;
        s.in_flight = s.in_flight.saturating_sub(1);
        self.push(
            &mut s,
            ProgressKind::Completed,
            report.shard,
            report.node,
            report.job_id,
            report.attempts,
        );
    }

    /// A shard went back to the pending queue. `from_flight` says whether
    /// it had actually been in flight (poll-side failure or timeout) or the
    /// submission itself failed before any job existed.
    pub fn note_rescheduled(
        &self,
        shard: usize,
        node: usize,
        job_id: u64,
        attempts: u32,
        from_flight: bool,
    ) {
        let mut s = self.lock();
        s.rescheduled += 1;
        if from_flight {
            s.in_flight = s.in_flight.saturating_sub(1);
        }
        self.push(
            &mut s,
            ProgressKind::Rescheduled,
            shard,
            node,
            job_id,
            attempts,
        );
    }

    /// Current totals.
    pub fn counts(&self) -> ProgressCounts {
        let s = self.lock();
        self.counts_locked(&s)
    }

    fn counts_locked(&self, s: &SinkState) -> ProgressCounts {
        ProgressCounts {
            total: self.total,
            completed: s.completed,
            in_flight: s.in_flight,
            pending: self.total.saturating_sub(s.completed + s.in_flight),
            dispatched: s.dispatched,
            rescheduled: s.rescheduled,
            seq: s.events.len() as u64,
        }
    }

    /// Totals plus every event with `seq > since`, in seq order. The two
    /// are read under one lock, so `counts.seq` is exactly the seq of the
    /// last returned event (or `since` if nothing new) — a client can feed
    /// it straight back as the next cursor without ever missing or
    /// re-reading an event.
    pub fn since(&self, since: u64) -> (ProgressCounts, Vec<ProgressEvent>) {
        let s = self.lock();
        let counts = self.counts_locked(&s);
        let start = (since as usize).min(s.events.len());
        (counts, s.events[start..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(shard: usize, node: usize, job_id: u64, attempts: u32) -> ShardReport {
        ShardReport {
            shard,
            node,
            job_id,
            attempts,
        }
    }

    /// The satellite regression: sequence numbers never regress (or
    /// repeat) when a shard bounces between nodes — every reschedule and
    /// re-dispatch extends the stream instead of rewriting it.
    #[test]
    fn sequence_numbers_never_regress_under_rescheduling() {
        let sink = ProgressSink::new(2);
        sink.note_dispatched(0, 0, 1, 1);
        sink.note_dispatched(1, 1, 2, 1);
        // shard 0 times out on node 0 and bounces to node 1, twice
        sink.note_rescheduled(0, 0, 1, 1, true);
        sink.note_dispatched(0, 1, 3, 2);
        sink.note_rescheduled(0, 1, 3, 2, true);
        sink.note_dispatched(0, 1, 4, 3);
        sink.note_completed(&report(1, 1, 2, 1));
        sink.note_completed(&report(0, 1, 4, 3));

        let (counts, events) = sink.since(0);
        assert_eq!(events.len(), 8);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64 + 1, "seq must be dense and increasing");
        }
        assert_eq!(counts.seq, 8);
        assert_eq!(counts.completed, 2);
        assert_eq!(counts.in_flight, 0);
        assert_eq!(counts.pending, 0);
        assert_eq!(counts.rescheduled, 2);
        assert_eq!(counts.dispatched, 4);
    }

    #[test]
    fn since_cursor_reads_are_monotone_and_exact() {
        let sink = ProgressSink::new(3);
        sink.note_dispatched(0, 0, 1, 1);
        sink.note_dispatched(1, 0, 2, 1);

        let (counts, first) = sink.since(0);
        assert_eq!(first.len(), 2);
        assert_eq!(counts.seq, 2);

        // nothing new: the same cursor returns no events and the same seq
        let (counts, none) = sink.since(counts.seq);
        assert!(none.is_empty());
        assert_eq!(counts.seq, 2);

        sink.note_completed(&report(0, 0, 1, 1));
        let (counts, next) = sink.since(2);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].seq, 3);
        assert_eq!(next[0].kind, ProgressKind::Completed);
        assert_eq!(counts.completed, 1);
        assert_eq!(counts.in_flight, 1);
        assert_eq!(counts.pending, 1);

        // a cursor past the end is tolerated (a stale client cannot panic
        // the coordinator)
        let (_, empty) = sink.since(999);
        assert!(empty.is_empty());
    }

    #[test]
    fn submit_failure_reschedule_does_not_corrupt_in_flight() {
        let sink = ProgressSink::new(1);
        // the submission itself failed: nothing was ever in flight
        sink.note_rescheduled(0, 0, 0, 0, false);
        let c = sink.counts();
        assert_eq!(c.in_flight, 0);
        assert_eq!(c.pending, 1);
        assert_eq!(c.rescheduled, 1);

        sink.note_dispatched(0, 1, 7, 1);
        sink.note_completed(&report(0, 1, 7, 1));
        let c = sink.counts();
        assert_eq!((c.completed, c.in_flight, c.pending), (1, 0, 0));
    }

    #[test]
    fn events_render_their_shard_report_fields() {
        let sink = ProgressSink::new(1);
        sink.note_dispatched(0, 2, 9, 1);
        sink.note_completed(&report(0, 2, 9, 1));
        let (_, events) = sink.since(1);
        let v = events[0].to_value();
        assert_eq!(v["kind"], "completed");
        assert_eq!(v["shard"].as_u64(), Some(0));
        assert_eq!(v["node"].as_u64(), Some(2));
        assert_eq!(v["job_id"].as_u64(), Some(9));
        assert_eq!(v["attempts"].as_u64(), Some(1));
        assert_eq!(v["seq"].as_u64(), Some(2));
    }
}
