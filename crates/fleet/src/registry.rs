//! The node registry: per-worker state the dispatcher schedules against.
//!
//! Nodes move `Healthy → Suspect → Dead` as failures accumulate and back to
//! `Healthy` on a successful probe or request — death is never final, a
//! restarted daemon rejoins the fleet at the next probe. Backpressure is
//! tracked separately from failure: a 429 with `Retry-After` sets a
//! backoff deadline that temporarily removes the node from dispatch
//! without counting against its health.

use crate::client::WorkerClient;
use serde_json::{Map, Value};
use std::time::Instant;

/// Scheduling health of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    Healthy,
    /// At least one recent failure; still dispatchable, next probe decides.
    Suspect,
    /// Past the consecutive-failure threshold; skipped by dispatch until a
    /// probe succeeds.
    Dead,
}

impl NodeState {
    pub fn as_str(self) -> &'static str {
        match self {
            NodeState::Healthy => "healthy",
            NodeState::Suspect => "suspect",
            NodeState::Dead => "dead",
        }
    }
}

/// One registered worker and its scheduling state.
pub struct Node {
    pub client: WorkerClient,
    pub state: NodeState,
    /// Shards currently submitted to this node and not yet resolved.
    pub in_flight: usize,
    /// Failures since the last success (any kind the dispatcher charges
    /// to the node).
    pub consecutive_failures: u32,
    /// Dispatch holdoff from backpressure (429 `Retry-After`).
    pub backoff_until: Option<Instant>,
    // lifetime counters, surfaced via /metrics and the run summary
    pub dispatched: u64,
    pub completed: u64,
    pub failures: u64,
}

/// Point-in-time, JSON-ready view of one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSnapshot {
    pub addr: String,
    pub state: NodeState,
    pub in_flight: usize,
    pub dispatched: u64,
    pub completed: u64,
    pub failures: u64,
}

impl NodeSnapshot {
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("addr".to_string(), Value::from(self.addr.as_str()));
        m.insert("state".to_string(), Value::from(self.state.as_str()));
        m.insert("in_flight".to_string(), Value::from(self.in_flight as u64));
        m.insert("dispatched".to_string(), Value::from(self.dispatched));
        m.insert("completed".to_string(), Value::from(self.completed));
        m.insert("failures".to_string(), Value::from(self.failures));
        Value::Object(m)
    }
}

/// The fleet's worker set. Indexes are stable for the registry's lifetime;
/// the dispatcher addresses nodes by index.
pub struct NodeRegistry {
    nodes: Vec<Node>,
    /// Consecutive failures that turn a node `Dead`.
    fail_threshold: u32,
}

impl NodeRegistry {
    pub fn new(clients: Vec<WorkerClient>, fail_threshold: u32) -> NodeRegistry {
        NodeRegistry {
            nodes: clients
                .into_iter()
                .map(|client| Node {
                    client,
                    state: NodeState::Healthy,
                    in_flight: 0,
                    consecutive_failures: 0,
                    backoff_until: None,
                    dispatched: 0,
                    completed: 0,
                    failures: 0,
                })
                .collect(),
            fail_threshold: fail_threshold.max(1),
        }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    pub fn client(&self, i: usize) -> &WorkerClient {
        &self.nodes[i].client
    }

    /// Nodes not currently `Dead`.
    pub fn alive(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state != NodeState::Dead)
            .count()
    }

    /// Pick the dispatch target: the non-dead, non-backing-off node with
    /// the fewest in-flight shards, capped at `max_in_flight` each. Ties
    /// break by index, so the choice is deterministic for a given state.
    pub fn pick_least_loaded(&self, max_in_flight: usize, now: Instant) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.state != NodeState::Dead)
            .filter(|(_, n)| n.in_flight < max_in_flight)
            .filter(|(_, n)| n.backoff_until.is_none_or(|t| t <= now))
            .min_by_key(|(i, n)| (n.in_flight, *i))
            .map(|(i, _)| i)
    }

    /// A shard was submitted to node `i`.
    pub fn note_dispatch(&mut self, i: usize) {
        let n = &mut self.nodes[i];
        n.in_flight += 1;
        n.dispatched += 1;
    }

    /// A shard on node `i` resolved successfully.
    pub fn note_success(&mut self, i: usize) {
        let n = &mut self.nodes[i];
        n.in_flight = n.in_flight.saturating_sub(1);
        n.completed += 1;
        n.consecutive_failures = 0;
        n.backoff_until = None;
        n.state = NodeState::Healthy;
    }

    /// A shard on node `i` failed in a way charged to the node (transport
    /// error, worker-reported failure, shard timeout). Crossing the
    /// threshold kills the node.
    pub fn note_failure(&mut self, i: usize, shard_was_in_flight: bool) {
        let threshold = self.fail_threshold;
        let n = &mut self.nodes[i];
        if shard_was_in_flight {
            n.in_flight = n.in_flight.saturating_sub(1);
        }
        n.failures += 1;
        n.consecutive_failures += 1;
        n.state = if n.consecutive_failures >= threshold {
            NodeState::Dead
        } else {
            NodeState::Suspect
        };
    }

    /// Backpressure from node `i`: hold dispatch until `until`, without
    /// charging the node's health.
    pub fn note_backoff(&mut self, i: usize, until: Instant, shard_was_in_flight: bool) {
        let n = &mut self.nodes[i];
        if shard_was_in_flight {
            n.in_flight = n.in_flight.saturating_sub(1);
        }
        n.backoff_until = Some(until);
    }

    /// A health probe of node `i` came back: success revives the node,
    /// failure is charged like any other.
    pub fn note_probe(&mut self, i: usize, healthy: bool) {
        if healthy {
            let n = &mut self.nodes[i];
            n.consecutive_failures = 0;
            n.state = NodeState::Healthy;
        } else {
            self.note_failure(i, false);
        }
    }

    pub fn snapshot(&self) -> Vec<NodeSnapshot> {
        self.nodes
            .iter()
            .map(|n| NodeSnapshot {
                addr: n.client.addr.to_string(),
                state: n.state,
                in_flight: n.in_flight,
                dispatched: n.dispatched,
                completed: n.completed,
                failures: n.failures,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn registry(n: usize) -> NodeRegistry {
        let clients = (0..n)
            .map(|i| {
                WorkerClient::new(
                    format!("127.0.0.1:{}", 40_000 + i).parse().unwrap(),
                    Duration::from_secs(1),
                    7,
                )
            })
            .collect();
        NodeRegistry::new(clients, 2)
    }

    #[test]
    fn least_loaded_pick_prefers_idle_nodes_and_respects_the_cap() {
        let mut r = registry(3);
        let now = Instant::now();
        assert_eq!(r.pick_least_loaded(2, now), Some(0), "ties break by index");
        r.note_dispatch(0);
        assert_eq!(r.pick_least_loaded(2, now), Some(1));
        r.note_dispatch(1);
        r.note_dispatch(2);
        assert_eq!(r.pick_least_loaded(2, now), Some(0));
        r.note_dispatch(0);
        // node 0 is at the cap now
        assert_eq!(r.pick_least_loaded(2, now), Some(1));
        assert_eq!(r.pick_least_loaded(1, now), None, "all at cap 1");
    }

    #[test]
    fn failures_kill_a_node_and_a_probe_revives_it() {
        let mut r = registry(2);
        let now = Instant::now();
        r.note_failure(0, false);
        assert_eq!(r.node(0).state, NodeState::Suspect);
        r.note_failure(0, false);
        assert_eq!(r.node(0).state, NodeState::Dead);
        assert_eq!(r.alive(), 1);
        assert_eq!(r.pick_least_loaded(2, now), Some(1), "dead node skipped");
        r.note_probe(0, true);
        assert_eq!(r.node(0).state, NodeState::Healthy);
        assert_eq!(r.alive(), 2);
    }

    #[test]
    fn backoff_holds_dispatch_without_hurting_health() {
        let mut r = registry(1);
        let now = Instant::now();
        r.note_backoff(0, now + Duration::from_secs(60), false);
        assert_eq!(r.pick_least_loaded(2, now), None, "backing off");
        assert_eq!(r.node(0).state, NodeState::Healthy, "health untouched");
        assert_eq!(
            r.pick_least_loaded(2, now + Duration::from_secs(61)),
            Some(0),
            "deadline passed"
        );
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut r = registry(1);
        r.note_dispatch(0);
        r.note_failure(0, true);
        r.note_dispatch(0);
        r.note_success(0);
        r.note_failure(0, false);
        assert_eq!(
            r.node(0).state,
            NodeState::Suspect,
            "streak restarted after success, one failure is not death"
        );
    }
}
