//! The node registry: per-worker state the dispatcher schedules against.
//!
//! Nodes move `Healthy → Suspect → Dead` as failures accumulate and back to
//! `Healthy` on a successful probe or request — death is never final, a
//! restarted daemon rejoins the fleet at the next probe. Backpressure is
//! tracked separately from failure: a 429 with `Retry-After` sets a
//! backoff deadline that temporarily removes the node from dispatch
//! without counting against its health.
//!
//! Beyond health, every node carries a load picture for the weighted
//! scheduler: the worker/queue capacities its `/healthz` advertises
//! (refreshed on the probe cadence) and an EWMA of observed shard latency.
//! [`NodeRegistry::pick_node`] scores candidates by estimated completion
//! time — `(in_flight + 1) × ewma_us ÷ workers` — so a heterogeneous fleet
//! keeps its fast nodes fed instead of tail-waiting on the slowest one.

use crate::client::{WorkerClient, WorkerHealth};
use serde_json::{Map, Value};
use std::time::Instant;

/// EWMA smoothing factor for observed shard latency: recent shards count
/// for ~30%, so a node that slows down mid-run is re-weighted within a few
/// completions without one outlier dominating.
const EWMA_ALPHA: f64 = 0.3;

/// How the dispatcher picks the next node for a pending shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Legacy: fewest in-flight shards wins, uniform per-node cap.
    LeastLoaded,
    /// Estimated-completion-time scoring from advertised capacity and
    /// observed shard latency; per-node cap scales with advertised
    /// workers. The default.
    #[default]
    Weighted,
}

impl SchedPolicy {
    pub fn as_str(self) -> &'static str {
        match self {
            SchedPolicy::LeastLoaded => "least-loaded",
            SchedPolicy::Weighted => "weighted",
        }
    }

    /// Parse the CLI spelling; `None` for anything unrecognised.
    pub fn parse(s: &str) -> Option<SchedPolicy> {
        match s {
            "least-loaded" => Some(SchedPolicy::LeastLoaded),
            "weighted" => Some(SchedPolicy::Weighted),
            _ => None,
        }
    }
}

/// Scheduling health of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    Healthy,
    /// At least one recent failure; still dispatchable, next probe decides.
    Suspect,
    /// Past the consecutive-failure threshold; skipped by dispatch until a
    /// probe succeeds.
    Dead,
}

impl NodeState {
    pub fn as_str(self) -> &'static str {
        match self {
            NodeState::Healthy => "healthy",
            NodeState::Suspect => "suspect",
            NodeState::Dead => "dead",
        }
    }
}

/// One registered worker and its scheduling state.
pub struct Node {
    pub client: WorkerClient,
    pub state: NodeState,
    /// Shards currently submitted to this node and not yet resolved.
    pub in_flight: usize,
    /// Failures since the last success (any kind the dispatcher charges
    /// to the node).
    pub consecutive_failures: u32,
    /// Dispatch holdoff from backpressure (429 `Retry-After`).
    pub backoff_until: Option<Instant>,
    /// Worker threads the node's `/healthz` advertises (floored at 1 by
    /// the client); scales both the weighted score and the in-flight cap.
    pub workers: u64,
    /// Advertised admission-queue capacity, kept for the load picture.
    pub queue_capacity: u64,
    /// Advertised queue depth at the last probe.
    pub queue_depth: u64,
    /// EWMA of observed shard latency in µs; `None` until the node has
    /// completed (or timed out) a shard this run.
    pub ewma_us: Option<f64>,
    // lifetime counters, surfaced via /metrics and the run summary
    pub dispatched: u64,
    pub completed: u64,
    pub failures: u64,
}

/// Point-in-time, JSON-ready view of one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSnapshot {
    pub addr: String,
    pub state: NodeState,
    pub in_flight: usize,
    /// Advertised worker count at the last probe.
    pub workers: u64,
    /// Shard-latency EWMA rounded to whole µs, when observed.
    pub ewma_us: Option<u64>,
    pub dispatched: u64,
    pub completed: u64,
    pub failures: u64,
}

impl NodeSnapshot {
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("addr".to_string(), Value::from(self.addr.as_str()));
        m.insert("state".to_string(), Value::from(self.state.as_str()));
        m.insert("in_flight".to_string(), Value::from(self.in_flight as u64));
        m.insert("workers".to_string(), Value::from(self.workers));
        if let Some(e) = self.ewma_us {
            m.insert("ewma_us".to_string(), Value::from(e));
        }
        m.insert("dispatched".to_string(), Value::from(self.dispatched));
        m.insert("completed".to_string(), Value::from(self.completed));
        m.insert("failures".to_string(), Value::from(self.failures));
        Value::Object(m)
    }
}

/// The fleet's worker set. Indexes are stable for the registry's lifetime;
/// the dispatcher addresses nodes by index.
pub struct NodeRegistry {
    nodes: Vec<Node>,
    /// Consecutive failures that turn a node `Dead`.
    fail_threshold: u32,
}

impl NodeRegistry {
    pub fn new(clients: Vec<WorkerClient>, fail_threshold: u32) -> NodeRegistry {
        NodeRegistry {
            nodes: clients
                .into_iter()
                .map(|client| Node {
                    client,
                    state: NodeState::Healthy,
                    in_flight: 0,
                    consecutive_failures: 0,
                    backoff_until: None,
                    workers: 1,
                    queue_capacity: 1,
                    queue_depth: 0,
                    ewma_us: None,
                    dispatched: 0,
                    completed: 0,
                    failures: 0,
                })
                .collect(),
            fail_threshold: fail_threshold.max(1),
        }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    pub fn client(&self, i: usize) -> &WorkerClient {
        &self.nodes[i].client
    }

    /// Nodes not currently `Dead`.
    pub fn alive(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state != NodeState::Dead)
            .count()
    }

    /// Pick the dispatch target under `policy`. `base_cap` is the
    /// configured `max_in_flight_per_node`; the weighted policy scales it
    /// by each node's advertised worker count. Both policies are
    /// deterministic: ties break by registry index.
    pub fn pick_node(&self, policy: SchedPolicy, base_cap: usize, now: Instant) -> Option<usize> {
        match policy {
            SchedPolicy::LeastLoaded => self.pick_least_loaded(base_cap, now),
            SchedPolicy::Weighted => self.pick_weighted(base_cap, now),
        }
    }

    /// Pick the non-dead, non-backing-off node with the fewest in-flight
    /// shards, capped at `max_in_flight` each. Ties break by index, so
    /// the choice is deterministic for a given state.
    pub fn pick_least_loaded(&self, max_in_flight: usize, now: Instant) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.state != NodeState::Dead)
            .filter(|(_, n)| n.in_flight < max_in_flight)
            .filter(|(_, n)| n.backoff_until.is_none_or(|t| t <= now))
            .min_by_key(|(i, n)| (n.in_flight, *i))
            .map(|(i, _)| i)
    }

    /// Estimated-completion-time pick: every eligible (non-dead,
    /// non-backing-off) node is scored `(in_flight + 1) × est_us ÷
    /// workers`, lowest score wins, ties break by index. Nodes without an
    /// observed EWMA use the mean of the fleet's known EWMAs (or a
    /// constant when nothing is known yet, which degrades the score to
    /// capacity-aware least-loaded).
    ///
    /// Crucially, at-cap nodes still *compete*: when the best estimated
    /// finisher is already at its capacity-scaled cap the pick is
    /// withheld (`None`) rather than falling through to a worse node —
    /// queueing behind the fast node beats feeding the slow one. Liveness
    /// holds because in-flight shards free slots on completion and the
    /// shard deadline bounds a wedged winner.
    fn pick_weighted(&self, base_cap: usize, now: Instant) -> Option<usize> {
        let fallback = self.fallback_est();
        let mut best: Option<(f64, usize)> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.state == NodeState::Dead || n.backoff_until.is_some_and(|t| t > now) {
                continue;
            }
            let est = n.ewma_us.unwrap_or(fallback);
            let score = (n.in_flight as f64 + 1.0) * est / n.workers.max(1) as f64;
            if best.is_none_or(|(b, _)| score.total_cmp(&b).is_lt()) {
                best = Some((score, i));
            }
        }
        let (_, i) = best?;
        (self.nodes[i].in_flight < self.effective_cap(i, base_cap)).then_some(i)
    }

    /// The weighted policy's in-flight cap for node `i`: the configured
    /// base cap scaled by the node's advertised worker count.
    pub fn effective_cap(&self, i: usize, base_cap: usize) -> usize {
        base_cap.saturating_mul(self.nodes[i].workers.max(1) as usize)
    }

    /// Mean observed EWMA across non-dead nodes, used to score nodes that
    /// have not completed a shard yet; 1.0 when nothing is known (the
    /// constant cancels out of the score comparison).
    fn fallback_est(&self) -> f64 {
        let known: Vec<f64> = self
            .nodes
            .iter()
            .filter(|n| n.state != NodeState::Dead)
            .filter_map(|n| n.ewma_us)
            .collect();
        if known.is_empty() {
            1.0
        } else {
            known.iter().sum::<f64>() / known.len() as f64
        }
    }

    /// Node `i`'s current latency estimate in whole µs, as the scheduler
    /// would score it — for flight-recorder decision events.
    pub fn est_shard_us(&self, i: usize) -> u64 {
        self.nodes[i]
            .ewma_us
            .unwrap_or_else(|| self.fallback_est())
            .round() as u64
    }

    /// Fold an observed shard latency (completion, or elapsed time at a
    /// shard timeout — timeouts must poison the estimate or a wedged node
    /// keeps winning picks) into node `i`'s EWMA; returns the new value.
    pub fn note_latency(&mut self, i: usize, shard_us: u64) -> f64 {
        let n = &mut self.nodes[i];
        let x = shard_us as f64;
        let next = match n.ewma_us {
            Some(prev) => prev + EWMA_ALPHA * (x - prev),
            None => x,
        };
        n.ewma_us = Some(next);
        next
    }

    /// Refresh node `i`'s advertised load signals from a `/healthz` body.
    pub fn note_health(&mut self, i: usize, health: &WorkerHealth) {
        let n = &mut self.nodes[i];
        n.workers = health.workers.max(1);
        n.queue_capacity = health.queue_capacity.max(1);
        n.queue_depth = health.queue_depth;
    }

    /// A shard was submitted to node `i`.
    pub fn note_dispatch(&mut self, i: usize) {
        let n = &mut self.nodes[i];
        n.in_flight += 1;
        n.dispatched += 1;
    }

    /// A shard on node `i` resolved successfully.
    pub fn note_success(&mut self, i: usize) {
        let n = &mut self.nodes[i];
        n.in_flight = n.in_flight.saturating_sub(1);
        n.completed += 1;
        n.consecutive_failures = 0;
        n.backoff_until = None;
        n.state = NodeState::Healthy;
    }

    /// A shard on node `i` failed in a way charged to the node (transport
    /// error, worker-reported failure, shard timeout). Crossing the
    /// threshold kills the node.
    pub fn note_failure(&mut self, i: usize, shard_was_in_flight: bool) {
        let threshold = self.fail_threshold;
        let n = &mut self.nodes[i];
        if shard_was_in_flight {
            n.in_flight = n.in_flight.saturating_sub(1);
        }
        n.failures += 1;
        n.consecutive_failures += 1;
        n.state = if n.consecutive_failures >= threshold {
            NodeState::Dead
        } else {
            NodeState::Suspect
        };
    }

    /// Backpressure from node `i`: hold dispatch until `until`, without
    /// charging the node's health.
    pub fn note_backoff(&mut self, i: usize, until: Instant, shard_was_in_flight: bool) {
        let n = &mut self.nodes[i];
        if shard_was_in_flight {
            n.in_flight = n.in_flight.saturating_sub(1);
        }
        n.backoff_until = Some(until);
    }

    /// A health probe of node `i` came back: success revives the node,
    /// failure is charged like any other.
    pub fn note_probe(&mut self, i: usize, healthy: bool) {
        if healthy {
            let n = &mut self.nodes[i];
            if n.state == NodeState::Dead {
                // a dead→healthy transition is a (re)started daemon: any
                // pre-death Retry-After holdoff belonged to the old
                // process and must not keep the revived node
                // undispatchable. A live node's holdoff stays — probes
                // run on a cadence and would otherwise erase every 429
                // hint within one interval.
                n.backoff_until = None;
            }
            n.consecutive_failures = 0;
            n.state = NodeState::Healthy;
        } else {
            self.note_failure(i, false);
        }
    }

    pub fn snapshot(&self) -> Vec<NodeSnapshot> {
        self.nodes
            .iter()
            .map(|n| NodeSnapshot {
                addr: n.client.addr.to_string(),
                state: n.state,
                in_flight: n.in_flight,
                workers: n.workers,
                ewma_us: n.ewma_us.map(|e| e.round() as u64),
                dispatched: n.dispatched,
                completed: n.completed,
                failures: n.failures,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn registry(n: usize) -> NodeRegistry {
        let clients = (0..n)
            .map(|i| {
                WorkerClient::new(
                    format!("127.0.0.1:{}", 40_000 + i).parse().unwrap(),
                    Duration::from_secs(1),
                    7,
                )
            })
            .collect();
        NodeRegistry::new(clients, 2)
    }

    #[test]
    fn least_loaded_pick_prefers_idle_nodes_and_respects_the_cap() {
        let mut r = registry(3);
        let now = Instant::now();
        assert_eq!(r.pick_least_loaded(2, now), Some(0), "ties break by index");
        r.note_dispatch(0);
        assert_eq!(r.pick_least_loaded(2, now), Some(1));
        r.note_dispatch(1);
        r.note_dispatch(2);
        assert_eq!(r.pick_least_loaded(2, now), Some(0));
        r.note_dispatch(0);
        // node 0 is at the cap now
        assert_eq!(r.pick_least_loaded(2, now), Some(1));
        assert_eq!(r.pick_least_loaded(1, now), None, "all at cap 1");
    }

    #[test]
    fn failures_kill_a_node_and_a_probe_revives_it() {
        let mut r = registry(2);
        let now = Instant::now();
        r.note_failure(0, false);
        assert_eq!(r.node(0).state, NodeState::Suspect);
        r.note_failure(0, false);
        assert_eq!(r.node(0).state, NodeState::Dead);
        assert_eq!(r.alive(), 1);
        assert_eq!(r.pick_least_loaded(2, now), Some(1), "dead node skipped");
        r.note_probe(0, true);
        assert_eq!(r.node(0).state, NodeState::Healthy);
        assert_eq!(r.alive(), 2);
    }

    #[test]
    fn backoff_holds_dispatch_without_hurting_health() {
        let mut r = registry(1);
        let now = Instant::now();
        r.note_backoff(0, now + Duration::from_secs(60), false);
        assert_eq!(r.pick_least_loaded(2, now), None, "backing off");
        assert_eq!(r.node(0).state, NodeState::Healthy, "health untouched");
        assert_eq!(
            r.pick_least_loaded(2, now + Duration::from_secs(61)),
            Some(0),
            "deadline passed"
        );
    }

    fn health(workers: u64, queue_capacity: u64) -> WorkerHealth {
        WorkerHealth {
            queue_depth: 0,
            queue_capacity,
            workers,
            in_flight: 0,
        }
    }

    #[test]
    fn healthy_probe_on_a_dead_node_clears_the_stale_backoff() {
        // regression: a daemon 429s with a long Retry-After, dies, and is
        // probe-revived — the pre-death holdoff belonged to the old
        // process and must not keep the revived node undispatchable
        let mut r = registry(1);
        let now = Instant::now();
        r.note_backoff(0, now + Duration::from_secs(60), false);
        r.note_failure(0, false);
        r.note_failure(0, false);
        assert_eq!(r.node(0).state, NodeState::Dead);
        r.note_probe(0, true);
        assert_eq!(r.node(0).state, NodeState::Healthy);
        assert_eq!(
            r.pick_node(SchedPolicy::Weighted, 2, now),
            Some(0),
            "revived node dispatches immediately, stale 60s backoff cleared"
        );
        assert_eq!(r.pick_node(SchedPolicy::LeastLoaded, 2, now), Some(0));
    }

    #[test]
    fn healthy_probe_on_a_live_node_keeps_the_backpressure_holdoff() {
        // probes run on a cadence for every node; they must not erase a
        // live node's Retry-After hint within one probe interval
        let mut r = registry(1);
        let now = Instant::now();
        r.note_backoff(0, now + Duration::from_secs(60), false);
        r.note_probe(0, true);
        assert_eq!(
            r.pick_node(SchedPolicy::Weighted, 2, now),
            None,
            "live node's holdoff survives a healthy probe"
        );
    }

    #[test]
    fn weighted_pick_prefers_advertised_capacity_and_scales_the_cap() {
        let mut r = registry(2);
        let now = Instant::now();
        r.note_health(1, &health(2, 8));
        // cold start, equal estimates: the two-worker node scores half
        assert_eq!(r.pick_node(SchedPolicy::Weighted, 2, now), Some(1));
        r.note_dispatch(1);
        r.note_dispatch(1);
        // node 1 at 2 in flight scores (3)/2 = 1.5 vs idle node 0 at 1.0
        assert_eq!(r.pick_node(SchedPolicy::Weighted, 2, now), Some(0));
        assert_eq!(r.effective_cap(1, 2), 4, "cap scales with workers");
        assert_eq!(r.effective_cap(0, 2), 2);
    }

    #[test]
    fn weighted_pick_scores_by_observed_latency_and_withholds_at_cap() {
        let mut r = registry(2);
        let now = Instant::now();
        r.note_latency(0, 100_000);
        r.note_latency(1, 1_000_000);
        assert_eq!(
            r.pick_node(SchedPolicy::Weighted, 1, now),
            Some(0),
            "10x-faster node wins"
        );
        r.note_dispatch(0);
        // fast node at cap still scores best (2 × 100ms = 200ms vs 1s on
        // the slow node): the pick is withheld — queueing behind the fast
        // node beats feeding the slow one
        assert_eq!(r.pick_node(SchedPolicy::Weighted, 1, now), None);
        // once the slow node would genuinely finish sooner, it gets work
        r.note_latency(0, 10_000_000);
        assert_eq!(r.pick_node(SchedPolicy::Weighted, 1, now), Some(1));
    }

    #[test]
    fn weighted_ties_break_by_index_and_ewma_updates_smoothly() {
        let mut r = registry(3);
        let now = Instant::now();
        assert_eq!(
            r.pick_node(SchedPolicy::Weighted, 2, now),
            Some(0),
            "cold start is deterministic: lowest index wins the tie"
        );
        let first = r.note_latency(0, 100_000);
        assert_eq!(first, 100_000.0, "first observation seeds the EWMA");
        let second = r.note_latency(0, 200_000);
        assert!(
            second > 100_000.0 && second < 200_000.0,
            "EWMA moves toward the new observation without jumping: {second}"
        );
        // unknown nodes inherit the fleet mean, so one measured node does
        // not monopolise (or repel) all dispatch
        assert_eq!(r.est_shard_us(1), second.round() as u64);
    }

    #[test]
    fn floored_capacity_node_is_not_starved_by_weighted_dispatch() {
        // a node whose healthz lacked `workers` arrives floored at 1; it
        // must still win picks once the bigger node is loaded
        let mut r = registry(2);
        let now = Instant::now();
        r.note_health(0, &health(1, 1)); // floored signals
        r.note_health(1, &health(4, 16));
        for _ in 0..3 {
            let pick = r.pick_node(SchedPolicy::Weighted, 2, now).unwrap();
            assert_eq!(pick, 1, "big node absorbs the first wave");
            r.note_dispatch(1);
        }
        // node 1 now scores (4)/4 = 1.0, tying the idle floored node;
        // the tie breaks to the lower index, so node 0 gets work
        assert_eq!(r.pick_node(SchedPolicy::Weighted, 2, now), Some(0));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut r = registry(1);
        r.note_dispatch(0);
        r.note_failure(0, true);
        r.note_dispatch(0);
        r.note_success(0);
        r.note_failure(0, false);
        assert_eq!(
            r.node(0).state,
            NodeState::Suspect,
            "streak restarted after success, one failure is not death"
        );
    }
}
