//! The coordinator: node set + dispatch loop + merge, behind one handle.
//!
//! A [`Fleet`] owns the worker registry (remote daemons by address and/or
//! embedded in-process `proof-serve` daemons for self-contained operation),
//! the `proof-obs` tracer/metrics the whole run reports through, and the
//! dispatcher. Runs are job-style: [`Fleet::submit_grid`] validates the
//! spec, mints a [`RunHandle`] on the run ledger, and hands the dispatch
//! to a dedicated run thread that publishes progress through the handle's
//! [`ProgressSink`](crate::progress::ProgressSink); [`Fleet::run_grid`] is
//! the synchronous wrapper (submit + wait). The registry snapshot, last
//! merged trace, and health view stay readable from the shared
//! [`FleetView`] while the run thread owns the registry — the coordinator
//! HTTP surface never blocks on a running grid.
//!
//! [`run_grid_local`] is the in-process single-node reference producing
//! the byte-identical document without any HTTP — the determinism contract
//! the integration tests and CI smoke pin down.

use crate::client::WorkerClient;
use crate::dispatcher::{DispatchCtx, DispatchOutcome, Dispatcher, FleetCounters};
use crate::merger::merge_run;
use crate::planner::{plan_shards, ShardPlan};
use crate::registry::{NodeRegistry, NodeSnapshot};
use crate::runs::{FleetView, RunHandle, RunLedger};
use crate::trace::merge_fleet_trace;
use proof_core::{GridSpec, ProofError};
use proof_obs::export::{federate_prometheus, prometheus_text};
use proof_obs::{
    FieldValue, FlightRecorder, MetricsRegistry, RingCollector, Tracer, DEFAULT_FLIGHT_CAPACITY,
};
use proof_serve::AnalysisJob;
use serde_json::{Map, Value};
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Why a fleet run could not produce its artifact.
#[derive(Debug, Clone)]
pub enum FleetError {
    /// The registry is empty — nothing to dispatch to.
    NoNodes,
    /// Every node is dead (and unrevivable by probes so far) with shards
    /// still unresolved.
    AllNodesDead { unresolved: usize },
    /// One shard burned through its attempt budget across nodes.
    ShardFailed {
        shard: usize,
        attempts: u32,
        last_error: String,
    },
    /// The grid spec or the merge rejected the run.
    Grid(ProofError),
    /// Starting an embedded daemon failed.
    Io(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoNodes => write!(f, "no worker nodes configured"),
            FleetError::AllNodesDead { unresolved } => {
                write!(f, "all nodes dead with {unresolved} shards unresolved")
            }
            FleetError::ShardFailed {
                shard,
                attempts,
                last_error,
            } => write!(
                f,
                "shard {shard} failed after {attempts} attempts: {last_error}"
            ),
            FleetError::Grid(e) => write!(f, "{e}"),
            FleetError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ProofError> for FleetError {
    fn from(e: ProofError) -> FleetError {
        FleetError::Grid(e)
    }
}

/// Fleet topology and tuning.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Remote worker daemons, by address.
    pub nodes: Vec<SocketAddr>,
    /// Embedded in-process daemons to start alongside (0 for remote-only).
    pub local_daemons: usize,
    /// Worker threads per embedded daemon.
    pub local_workers: usize,
    /// Transport bound for every worker request.
    pub request_timeout: Duration,
    /// Consecutive failures that kill a node.
    pub node_fail_threshold: u32,
    /// Seed for the clients' backpressure-retry jitter (independent of the
    /// grid seed; does not affect artifact bytes).
    pub client_seed: u64,
    /// Advertise every node's cache endpoint to every other node before a
    /// run (and scrape per-node remote-tier hits into
    /// `fleet_cache_remote_hits` after it), so rescheduled or re-run
    /// shards are served from warm peers. Artifact bytes are identical
    /// either way — this only changes where they come from.
    pub advertise_peer_cache: bool,
    pub dispatcher: crate::dispatcher::DispatcherConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            nodes: Vec::new(),
            local_daemons: 0,
            local_workers: 2,
            request_timeout: Duration::from_secs(10),
            node_fail_threshold: 2,
            client_seed: 0x5EED,
            advertise_peer_cache: true,
            dispatcher: crate::dispatcher::DispatcherConfig::default(),
        }
    }
}

impl FleetConfig {
    /// Self-contained topology: `n` embedded local daemons, no remotes.
    pub fn local(n: usize) -> FleetConfig {
        FleetConfig {
            local_daemons: n,
            ..FleetConfig::default()
        }
    }

    /// Remote topology: dispatch to the given daemons.
    pub fn remote(nodes: Vec<SocketAddr>) -> FleetConfig {
        FleetConfig {
            nodes,
            ..FleetConfig::default()
        }
    }
}

/// The result of one grid run.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// The merged artifact — byte-identical to [`run_grid_local`] of the
    /// same spec.
    pub merged: String,
    /// Per-run dispatch accounting.
    pub outcome: DispatchOutcome,
    /// Node states after the run.
    pub nodes: Vec<NodeSnapshot>,
    /// The merged cross-node Chrome-trace document: the synthesized
    /// coordinator track plus each node's re-anchored span subtree
    /// (see [`crate::trace`]). Byte-deterministic for a given spec, seed,
    /// and topology.
    pub trace_json: String,
}

/// The shared coordinator core: everything a run thread, the HTTP surface,
/// and the owning [`Fleet`] handle all read through. The registry mutex is
/// held by at most one run thread at a time (concurrent submissions
/// serialize on it); every other field answers without it.
struct FleetInner {
    config: FleetConfig,
    registry: Mutex<NodeRegistry>,
    /// Node addresses, fixed at start (registry order).
    addrs: Vec<SocketAddr>,
    tracer: Arc<Tracer>,
    ring: Arc<RingCollector>,
    metrics: Arc<MetricsRegistry>,
    flight: Arc<FlightRecorder>,
    view: Arc<FleetView>,
    runs: Arc<RunLedger>,
}

impl FleetInner {
    fn lock_registry(&self) -> MutexGuard<'_, NodeRegistry> {
        self.registry.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Coordinator handle: registry + embedded daemons + observability.
pub struct Fleet {
    inner: Arc<FleetInner>,
    embedded: Vec<proof_serve::Server>,
}

impl Fleet {
    /// Start embedded daemons (if any) and register every node. Fails if
    /// the resulting registry would be empty or a daemon cannot bind.
    pub fn start(config: FleetConfig) -> Result<Fleet, FleetError> {
        if config.nodes.is_empty() && config.local_daemons == 0 {
            return Err(FleetError::NoNodes);
        }
        let mut embedded = Vec::new();
        let mut addrs = config.nodes.clone();
        for _ in 0..config.local_daemons {
            let server = proof_serve::Server::start(proof_serve::ServeConfig {
                workers: config.local_workers,
                ..proof_serve::ServeConfig::default()
            })
            .map_err(|e| FleetError::Io(format!("cannot start embedded daemon: {e}")))?;
            addrs.push(server.addr());
            embedded.push(server);
        }
        let clients = addrs
            .iter()
            .map(|&addr| WorkerClient::new(addr, config.request_timeout, config.client_seed))
            .collect();
        let registry = NodeRegistry::new(clients, config.node_fail_threshold);
        let (tracer, ring) = proof_obs::shared_ring_tracer();
        let metrics = Arc::new(MetricsRegistry::new());
        // pre-register so the exposition carries the zero value even
        // before (or without) any peer-cache traffic, weighted dispatch,
        // or submitted runs
        metrics.counter("fleet_cache_remote_hits");
        metrics.counter("fleet_weighted_picks");
        metrics.counter("fleet_runs_total");
        metrics.gauge("fleet_runs_active").set(0.0);
        let view = Arc::new(FleetView::new());
        view.set_nodes(registry.snapshot());
        Ok(Fleet {
            inner: Arc::new(FleetInner {
                config,
                registry: Mutex::new(registry),
                addrs,
                tracer,
                ring,
                metrics,
                flight: Arc::new(FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)),
                view,
                runs: Arc::new(RunLedger::new()),
            }),
            embedded,
        })
    }

    /// Addresses of every registered node (embedded daemons included).
    pub fn node_addrs(&self) -> Vec<SocketAddr> {
        self.inner.addrs.clone()
    }

    /// Accept a grid run: validate and plan the spec, mint a run id on the
    /// ledger, and hand the dispatch to a dedicated run thread. Returns
    /// immediately with the [`RunHandle`] — poll its progress, or
    /// [`RunHandle::wait`] for the result. Concurrent submissions are
    /// accepted eagerly and serialize on the registry inside their run
    /// threads, in submission order of lock acquisition.
    pub fn submit_grid(&self, spec: &GridSpec) -> Result<Arc<RunHandle>, FleetError> {
        let plan = plan_shards(spec)?;
        let handle = self.inner.runs.create(plan.shards.len());
        self.inner.metrics.counter("fleet_runs_total").inc();
        self.inner
            .metrics
            .gauge("fleet_runs_active")
            .set(self.inner.runs.active() as f64);
        self.inner.flight.record(
            "run",
            format!(
                "run {} submitted: {} shards",
                handle.id(),
                plan.shards.len()
            ),
            vec![
                ("run", FieldValue::U64(handle.id())),
                ("shards", FieldValue::U64(plan.shards.len() as u64)),
                ("seed", FieldValue::U64(spec.seed)),
            ],
        );
        let inner = Arc::clone(&self.inner);
        let spec = spec.clone();
        let run_handle = Arc::clone(&handle);
        let thread = std::thread::spawn(move || {
            let result = execute_run(&inner, &spec, &plan, &run_handle);
            if let Err(e) = &result {
                inner.flight.record(
                    "run",
                    format!("run {} failed: {e}", run_handle.id()),
                    vec![("run", FieldValue::U64(run_handle.id()))],
                );
            }
            // publish the post-run gauge value *before* flipping the
            // handle, so a waiter that wakes on finish() already sees it;
            // re-set after as self-correction under concurrent finishes
            inner
                .metrics
                .gauge("fleet_runs_active")
                .set(inner.runs.active().saturating_sub(1) as f64);
            run_handle.finish(result);
            inner
                .metrics
                .gauge("fleet_runs_active")
                .set(inner.runs.active() as f64);
        });
        self.inner.runs.note_thread(thread);
        Ok(handle)
    }

    /// Run one grid to the merged artifact, synchronously: submit + wait.
    /// The run is traced as a `fleet_run` span tree on the shared ring
    /// tracer; counters land on [`Fleet::metrics`].
    pub fn run_grid(&self, spec: &GridSpec) -> Result<FleetRun, FleetError> {
        self.submit_grid(spec)?.wait()
    }

    /// Fleet metrics as JSON: counters, gauges, and the per-node view.
    pub fn metrics_json(&self) -> String {
        metrics_json_from(&self.inner.metrics, &self.inner.view.nodes())
    }

    /// Fleet metrics in Prometheus exposition format (`proof_fleet_`
    /// prefix).
    pub fn metrics_prometheus(&self) -> String {
        prometheus_text(&self.inner.metrics.snapshot(), "proof_fleet_")
    }

    /// The coordinator's own exposition plus every reachable node's
    /// scraped exposition federated under a `node="<addr>"` label — one
    /// scrape endpoint for the whole fleet. Unreachable nodes are skipped
    /// (the coordinator's own `proof_fleet_` series still report them).
    pub fn metrics_prometheus_federated(&self) -> String {
        let mut out = self.metrics_prometheus();
        let registry = self.inner.lock_registry();
        let scraped: Vec<(String, String)> = (0..registry.len())
            .filter_map(|i| {
                let client = registry.client(i);
                client
                    .scrape_prometheus()
                    .ok()
                    .map(|body| (client.addr.to_string(), body))
            })
            .collect();
        if !scraped.is_empty() {
            out.push_str(&federate_prometheus(&scraped));
        }
        out
    }

    /// The merged cross-node trace document of the most recent grid run.
    pub fn last_trace(&self) -> Option<String> {
        self.inner.view.last_trace()
    }

    /// The coordinator's flight recorder: a bounded ring of structured
    /// scheduling events (dispatches, reschedules, health transitions,
    /// run lifecycle).
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.inner.flight
    }

    /// Current per-node registry view (the dispatcher republishes it as
    /// shards resolve, so it is live during a run).
    pub fn nodes(&self) -> Vec<NodeSnapshot> {
        self.inner.view.nodes()
    }

    /// The shared metrics registry (counters survive across runs).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.inner.metrics
    }

    /// The ring collector behind the fleet tracer (span inspection).
    pub fn ring(&self) -> &Arc<RingCollector> {
        &self.inner.ring
    }

    /// The always-readable registry/trace view shared with run threads.
    pub fn view(&self) -> &Arc<FleetView> {
        &self.inner.view
    }

    /// The run ledger: every accepted run's handle, by id.
    pub fn runs(&self) -> &Arc<RunLedger> {
        &self.inner.runs
    }

    /// Drain every run thread, then shut down embedded daemons (their
    /// queues drain first). Remote nodes are untouched.
    pub fn shutdown(self) {
        self.inner.runs.join_all();
        for server in self.embedded {
            server.shutdown();
        }
    }
}

/// The run thread body: owns the registry for the duration of the
/// dispatch, publishes progress through the handle's sink and the shared
/// view, and produces the merged artifact + cross-node trace.
fn execute_run(
    inner: &FleetInner,
    spec: &GridSpec,
    plan: &ShardPlan,
    handle: &RunHandle,
) -> Result<FleetRun, FleetError> {
    let mut registry = inner.lock_registry();
    let trace = proof_obs::new_trace_id();
    let mut root = inner.tracer.span_in(trace, "fleet_run");
    let root_id = root.id();
    root.field("cells", plan.cells as u64);
    root.field("nodes", registry.len() as u64);
    root.field("seed", spec.seed);
    inner.flight.record(
        "run",
        format!("run {} started: {} shards", handle.id(), plan.shards.len()),
        vec![
            ("run", FieldValue::U64(handle.id())),
            ("trace", FieldValue::U64(trace)),
            ("shards", FieldValue::U64(plan.shards.len() as u64)),
            ("seed", FieldValue::U64(spec.seed)),
        ],
    );
    // wire every node's remote cache tier to its peers before any shard
    // lands, and remember each node's remote-hit count so the post-run
    // scrape can attribute this run's deltas
    let remote_hits_before = if inner.config.advertise_peer_cache {
        advertise_peer_caches(inner, &registry);
        scrape_remote_hits(&registry)
    } else {
        Vec::new()
    };
    let mut dispatcher_config = inner.config.dispatcher.clone();
    dispatcher_config.advertise_peer_cache &= inner.config.advertise_peer_cache;
    let dispatcher = Dispatcher::new(
        dispatcher_config,
        DispatchCtx {
            counters: FleetCounters::register(&inner.metrics),
            tracer: Arc::clone(&inner.tracer),
            trace,
            parent_span: root_id,
            metrics: Arc::clone(&inner.metrics),
            flight: Arc::clone(&inner.flight),
            progress: Arc::clone(handle.progress()),
            view: Arc::clone(&inner.view),
        },
    );
    let outcome = dispatcher.run(plan, &mut registry);
    root.finish();
    if inner.config.advertise_peer_cache {
        let after = scrape_remote_hits(&registry);
        let mut delta = 0u64;
        for (before, after) in remote_hits_before.iter().zip(&after) {
            if let (Some(b), Some(a)) = (before, after) {
                delta += a.saturating_sub(*b);
            }
        }
        inner.metrics.counter("fleet_cache_remote_hits").add(delta);
    }
    let outcome = outcome?;
    let merged = merge_run(spec, &outcome.results)?;
    // cross-node trace assembly: pull each node's raw span listing for
    // this run's trace (best-effort — a node that restarted or evicted
    // the trace just contributes no track) and merge it with the
    // dispatch record into one deterministic document
    let node_docs: Vec<(usize, String, Value)> = (0..registry.len())
        .filter_map(|i| {
            let client = registry.client(i);
            match client.fetch_trace_spans(trace) {
                Ok(Some(doc)) => Some((i, client.addr.to_string(), doc)),
                Ok(None) => None,
                Err(e) => {
                    inner.tracer.event(
                        proof_obs::Level::Warn,
                        "proof_fleet",
                        format!("trace fetch from {} failed: {e}", client.addr),
                        Vec::new(),
                    );
                    None
                }
            }
        })
        .collect();
    let trace_json = merge_fleet_trace(&outcome.shards, registry.len(), &node_docs);
    // publish the trace before the handle flips to finished, so a client
    // that sees `state: done` can always fetch `/grid/trace`
    inner.view.set_last_trace(trace_json.clone());
    inner.flight.record(
        "run",
        format!(
            "run {} finished: {} shards, {} rescheduled",
            handle.id(),
            outcome.shards.len(),
            outcome.rescheduled
        ),
        vec![
            ("run", FieldValue::U64(handle.id())),
            ("trace", FieldValue::U64(trace)),
            ("completed", FieldValue::U64(outcome.results.len() as u64)),
        ],
    );
    let nodes = registry.snapshot();
    // mirror per-node lifetime counters into the registry as gauges so
    // the Prometheus exposition carries them alongside fleet_* counters
    for (i, n) in nodes.iter().enumerate() {
        inner
            .metrics
            .gauge(&format!("node{i}_dispatched"))
            .set(n.dispatched as f64);
        inner
            .metrics
            .gauge(&format!("node{i}_completed"))
            .set(n.completed as f64);
        inner
            .metrics
            .gauge(&format!("node{i}_failures"))
            .set(n.failures as f64);
    }
    inner.view.set_nodes(nodes.clone());
    Ok(FleetRun {
        merged,
        outcome,
        nodes,
        trace_json,
    })
}

/// Tell every node about every *other* node's cache endpoint
/// (best-effort — an unreachable node just misses the refresh and gets
/// re-advertised when a probe revives it).
fn advertise_peer_caches(inner: &FleetInner, registry: &NodeRegistry) {
    let n = registry.len();
    if n < 2 {
        return;
    }
    let addrs: Vec<SocketAddr> = (0..n).map(|i| registry.client(i).addr).collect();
    for i in 0..n {
        let peers: Vec<SocketAddr> = addrs
            .iter()
            .copied()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, a)| a)
            .collect();
        match registry.client(i).advertise_peers(&peers) {
            Ok(_) => inner.metrics.counter("fleet_peer_advertisements").inc(),
            Err(e) => inner.tracer.event(
                proof_obs::Level::Warn,
                "proof_fleet",
                format!("peer-cache advertisement to {} failed: {e}", addrs[i]),
                Vec::new(),
            ),
        }
    }
}

/// Each node's lifetime remote-tier hit counter (`None` for nodes that
/// cannot answer), index-aligned with the registry.
fn scrape_remote_hits(registry: &NodeRegistry) -> Vec<Option<u64>> {
    (0..registry.len())
        .map(|i| registry.client(i).cache_remote_hits().ok())
        .collect()
}

/// Render a metrics registry plus a node snapshot as the coordinator's
/// JSON metrics document. Shared by [`Fleet::metrics_json`] and the HTTP
/// surface (which reads nodes from the [`FleetView`], so the document is
/// complete even mid-run).
pub(crate) fn metrics_json_from(metrics: &MetricsRegistry, nodes: &[NodeSnapshot]) -> String {
    let snap = metrics.snapshot();
    let mut m = Map::new();
    let mut counters = Map::new();
    for (name, v) in &snap.counters {
        counters.insert(name.clone(), Value::from(*v));
    }
    m.insert("counters".to_string(), Value::Object(counters));
    let mut gauges = Map::new();
    for (name, v) in &snap.gauges {
        gauges.insert(name.clone(), Value::from(*v));
    }
    m.insert("gauges".to_string(), Value::Object(gauges));
    m.insert(
        "nodes".to_string(),
        Value::Array(nodes.iter().map(NodeSnapshot::to_value).collect()),
    );
    Value::Object(m).to_string()
}

/// The single-node, in-process reference: execute every cell in canonical
/// order through the library pipeline and merge. No HTTP, no scheduling —
/// just the determinism baseline a fleet run must reproduce byte-for-byte.
pub fn run_grid_local(spec: &GridSpec) -> Result<String, ProofError> {
    spec.validate()?;
    let mut results = Vec::new();
    for (id, cell) in spec.cells().into_iter().enumerate() {
        let job = AnalysisJob::from_value(&cell.to_job_value()).map_err(ProofError::InvalidSpec)?;
        let report = job.execute()?;
        results.push((id, report.try_to_json()?));
    }
    proof_core::merge_cells(spec, &results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(json: &str) -> GridSpec {
        GridSpec::from_value(&serde_json::from_str(json).unwrap()).unwrap()
    }

    #[test]
    fn empty_topology_is_rejected() {
        assert!(matches!(
            Fleet::start(FleetConfig::default()),
            Err(FleetError::NoNodes)
        ));
    }

    #[test]
    fn local_reference_merges_every_cell() {
        let s = spec(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":11}"#);
        let merged = run_grid_local(&s).unwrap();
        let v: Value = serde_json::from_str(&merged).unwrap();
        assert_eq!(v["cells"].as_array().unwrap().len(), 2);
        assert!(
            v["sweep"].as_object().is_some(),
            "single-model batch grid is a sweep"
        );
        // determinism: a second run is byte-identical
        assert_eq!(merged, run_grid_local(&s).unwrap());
    }

    #[test]
    fn invalid_spec_is_rejected_at_submit_without_minting_a_run() {
        let fleet = Fleet::start(FleetConfig::local(1)).unwrap();
        let bad = GridSpec::from_value(
            &serde_json::from_str(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1]}"#)
                .unwrap(),
        )
        .unwrap();
        // a good spec plans; force invalidity through an empty batch list
        let mut empty = bad.clone();
        empty.batches.clear();
        assert!(fleet.submit_grid(&empty).is_err());
        assert_eq!(fleet.runs().total(), 0, "no run id burned on a bad spec");
        fleet.shutdown();
    }

    #[test]
    fn submit_streams_progress_and_matches_sync_bytes() {
        let s = spec(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":3}"#);
        let fleet = Fleet::start(FleetConfig::local(1)).unwrap();
        let handle = fleet.submit_grid(&s).unwrap();
        assert_eq!(handle.id(), 1);
        let run = handle.wait().unwrap();
        assert!(handle.is_finished());
        let (counts, events) = handle.progress().since(0);
        assert_eq!(counts.completed, 2);
        assert_eq!(counts.pending, 0);
        assert!(events.len() >= 4, "2 dispatches + 2 completions at least");
        assert_eq!(run.merged, run_grid_local(&s).unwrap());
        // the sync wrapper produces the same bytes and a second run id
        let sync = fleet.run_grid(&s).unwrap();
        assert_eq!(sync.merged, run.merged);
        assert_eq!(fleet.runs().total(), 2);
        assert_eq!(fleet.runs().active(), 0);
        let m: Value = serde_json::from_str(&fleet.metrics_json()).unwrap();
        assert_eq!(m["counters"]["fleet_runs_total"].as_u64(), Some(2));
        assert_eq!(m["gauges"]["fleet_runs_active"].as_f64(), Some(0.0));
        fleet.shutdown();
    }
}
