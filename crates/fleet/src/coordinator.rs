//! The coordinator: node set + dispatch loop + merge, behind one handle.
//!
//! A [`Fleet`] owns the worker registry (remote daemons by address and/or
//! embedded in-process `proof-serve` daemons for self-contained operation),
//! the `proof-obs` tracer/metrics the whole run reports through, and the
//! dispatcher. [`Fleet::run_grid`] takes a [`GridSpec`] to a merged
//! artifact; [`run_grid_local`] is the in-process single-node reference
//! producing the byte-identical document without any HTTP — the
//! determinism contract the integration tests and CI smoke pin down.

use crate::client::WorkerClient;
use crate::dispatcher::{DispatchOutcome, Dispatcher, DispatcherConfig, FleetCounters};
use crate::merger::merge_run;
use crate::planner::plan_shards;
use crate::registry::{NodeRegistry, NodeSnapshot};
use crate::trace::merge_fleet_trace;
use proof_core::{GridSpec, ProofError};
use proof_obs::export::{federate_prometheus, prometheus_text};
use proof_obs::{
    FieldValue, FlightRecorder, MetricsRegistry, RingCollector, Tracer, DEFAULT_FLIGHT_CAPACITY,
};
use proof_serve::AnalysisJob;
use serde_json::{Map, Value};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Why a fleet run could not produce its artifact.
#[derive(Debug, Clone)]
pub enum FleetError {
    /// The registry is empty — nothing to dispatch to.
    NoNodes,
    /// Every node is dead (and unrevivable by probes so far) with shards
    /// still unresolved.
    AllNodesDead { unresolved: usize },
    /// One shard burned through its attempt budget across nodes.
    ShardFailed {
        shard: usize,
        attempts: u32,
        last_error: String,
    },
    /// The grid spec or the merge rejected the run.
    Grid(ProofError),
    /// Starting an embedded daemon failed.
    Io(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoNodes => write!(f, "no worker nodes configured"),
            FleetError::AllNodesDead { unresolved } => {
                write!(f, "all nodes dead with {unresolved} shards unresolved")
            }
            FleetError::ShardFailed {
                shard,
                attempts,
                last_error,
            } => write!(
                f,
                "shard {shard} failed after {attempts} attempts: {last_error}"
            ),
            FleetError::Grid(e) => write!(f, "{e}"),
            FleetError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ProofError> for FleetError {
    fn from(e: ProofError) -> FleetError {
        FleetError::Grid(e)
    }
}

/// Fleet topology and tuning.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Remote worker daemons, by address.
    pub nodes: Vec<SocketAddr>,
    /// Embedded in-process daemons to start alongside (0 for remote-only).
    pub local_daemons: usize,
    /// Worker threads per embedded daemon.
    pub local_workers: usize,
    /// Transport bound for every worker request.
    pub request_timeout: Duration,
    /// Consecutive failures that kill a node.
    pub node_fail_threshold: u32,
    /// Seed for the clients' backpressure-retry jitter (independent of the
    /// grid seed; does not affect artifact bytes).
    pub client_seed: u64,
    /// Advertise every node's cache endpoint to every other node before a
    /// run (and scrape per-node remote-tier hits into
    /// `fleet_cache_remote_hits` after it), so rescheduled or re-run
    /// shards are served from warm peers. Artifact bytes are identical
    /// either way — this only changes where they come from.
    pub advertise_peer_cache: bool,
    pub dispatcher: DispatcherConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            nodes: Vec::new(),
            local_daemons: 0,
            local_workers: 2,
            request_timeout: Duration::from_secs(10),
            node_fail_threshold: 2,
            client_seed: 0x5EED,
            advertise_peer_cache: true,
            dispatcher: DispatcherConfig::default(),
        }
    }
}

impl FleetConfig {
    /// Self-contained topology: `n` embedded local daemons, no remotes.
    pub fn local(n: usize) -> FleetConfig {
        FleetConfig {
            local_daemons: n,
            ..FleetConfig::default()
        }
    }

    /// Remote topology: dispatch to the given daemons.
    pub fn remote(nodes: Vec<SocketAddr>) -> FleetConfig {
        FleetConfig {
            nodes,
            ..FleetConfig::default()
        }
    }
}

/// The result of one grid run.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// The merged artifact — byte-identical to [`run_grid_local`] of the
    /// same spec.
    pub merged: String,
    /// Per-run dispatch accounting.
    pub outcome: DispatchOutcome,
    /// Node states after the run.
    pub nodes: Vec<NodeSnapshot>,
    /// The merged cross-node Chrome-trace document: the synthesized
    /// coordinator track plus each node's re-anchored span subtree
    /// (see [`crate::trace`]). Byte-deterministic for a given spec, seed,
    /// and topology.
    pub trace_json: String,
}

/// Coordinator handle: registry + embedded daemons + observability.
pub struct Fleet {
    config: FleetConfig,
    registry: NodeRegistry,
    embedded: Vec<proof_serve::Server>,
    tracer: Arc<Tracer>,
    ring: Arc<RingCollector>,
    metrics: Arc<MetricsRegistry>,
    flight: Arc<FlightRecorder>,
    last_trace: Option<String>,
}

impl Fleet {
    /// Start embedded daemons (if any) and register every node. Fails if
    /// the resulting registry would be empty or a daemon cannot bind.
    pub fn start(config: FleetConfig) -> Result<Fleet, FleetError> {
        if config.nodes.is_empty() && config.local_daemons == 0 {
            return Err(FleetError::NoNodes);
        }
        let mut embedded = Vec::new();
        let mut addrs = config.nodes.clone();
        for _ in 0..config.local_daemons {
            let server = proof_serve::Server::start(proof_serve::ServeConfig {
                workers: config.local_workers,
                ..proof_serve::ServeConfig::default()
            })
            .map_err(|e| FleetError::Io(format!("cannot start embedded daemon: {e}")))?;
            addrs.push(server.addr());
            embedded.push(server);
        }
        let clients = addrs
            .iter()
            .map(|&addr| WorkerClient::new(addr, config.request_timeout, config.client_seed))
            .collect();
        let registry = NodeRegistry::new(clients, config.node_fail_threshold);
        let (tracer, ring) = proof_obs::shared_ring_tracer();
        let metrics = Arc::new(MetricsRegistry::new());
        // pre-register so the exposition carries the zero value even
        // before (or without) any peer-cache traffic or weighted dispatch
        metrics.counter("fleet_cache_remote_hits");
        metrics.counter("fleet_weighted_picks");
        Ok(Fleet {
            config,
            registry,
            embedded,
            tracer,
            ring,
            metrics,
            flight: Arc::new(FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)),
            last_trace: None,
        })
    }

    /// Addresses of every registered node (embedded daemons included).
    pub fn node_addrs(&self) -> Vec<SocketAddr> {
        self.registry
            .snapshot()
            .iter()
            .map(|s| s.addr.parse().expect("registry stores socket addrs"))
            .collect()
    }

    /// Run one grid to the merged artifact. The run is traced as a
    /// `fleet_run` span tree on the shared ring tracer; counters land on
    /// [`Fleet::metrics`].
    pub fn run_grid(&mut self, spec: &GridSpec) -> Result<FleetRun, FleetError> {
        let plan = plan_shards(spec)?;
        let trace = proof_obs::new_trace_id();
        let mut root = self.tracer.span_in(trace, "fleet_run");
        let root_id = root.id();
        root.field("cells", plan.cells as u64);
        root.field("nodes", self.registry.len() as u64);
        root.field("seed", spec.seed);
        self.flight.record(
            "run",
            format!("grid run started: {} shards", plan.shards.len()),
            vec![
                ("trace", FieldValue::U64(trace)),
                ("shards", FieldValue::U64(plan.shards.len() as u64)),
                ("seed", FieldValue::U64(spec.seed)),
            ],
        );
        // wire every node's remote cache tier to its peers before any
        // shard lands, and remember each node's remote-hit count so the
        // post-run scrape can attribute this run's deltas
        let remote_hits_before = if self.config.advertise_peer_cache {
            self.advertise_peer_caches();
            self.scrape_remote_hits()
        } else {
            Vec::new()
        };
        let mut dispatcher_config = self.config.dispatcher.clone();
        dispatcher_config.advertise_peer_cache &= self.config.advertise_peer_cache;
        let dispatcher = Dispatcher::new(
            dispatcher_config,
            FleetCounters::register(&self.metrics),
            Arc::clone(&self.tracer),
            trace,
            root_id,
            Arc::clone(&self.metrics),
            Arc::clone(&self.flight),
        );
        let outcome = dispatcher.run(&plan, &mut self.registry);
        root.finish();
        if self.config.advertise_peer_cache {
            let after = self.scrape_remote_hits();
            let mut delta = 0u64;
            for (before, after) in remote_hits_before.iter().zip(&after) {
                if let (Some(b), Some(a)) = (before, after) {
                    delta += a.saturating_sub(*b);
                }
            }
            self.metrics.counter("fleet_cache_remote_hits").add(delta);
        }
        let outcome = outcome?;
        let merged = merge_run(spec, &outcome.results)?;
        // cross-node trace assembly: pull each node's raw span listing for
        // this run's trace (best-effort — a node that restarted or evicted
        // the trace just contributes no track) and merge it with the
        // dispatch record into one deterministic document
        let node_docs: Vec<(usize, String, Value)> = (0..self.registry.len())
            .filter_map(|i| {
                let client = self.registry.client(i);
                match client.fetch_trace_spans(trace) {
                    Ok(Some(doc)) => Some((i, client.addr.to_string(), doc)),
                    Ok(None) => None,
                    Err(e) => {
                        self.tracer.event(
                            proof_obs::Level::Warn,
                            "proof_fleet",
                            format!("trace fetch from {} failed: {e}", client.addr),
                            Vec::new(),
                        );
                        None
                    }
                }
            })
            .collect();
        let trace_json = merge_fleet_trace(&outcome.shards, self.registry.len(), &node_docs);
        self.last_trace = Some(trace_json.clone());
        self.flight.record(
            "run",
            format!(
                "grid run finished: {} shards, {} rescheduled",
                outcome.shards.len(),
                outcome.rescheduled
            ),
            vec![
                ("trace", FieldValue::U64(trace)),
                ("completed", FieldValue::U64(outcome.results.len() as u64)),
            ],
        );
        let nodes = self.registry.snapshot();
        // mirror per-node lifetime counters into the registry as gauges so
        // the Prometheus exposition carries them alongside fleet_* counters
        for (i, n) in nodes.iter().enumerate() {
            self.metrics
                .gauge(&format!("node{i}_dispatched"))
                .set(n.dispatched as f64);
            self.metrics
                .gauge(&format!("node{i}_completed"))
                .set(n.completed as f64);
            self.metrics
                .gauge(&format!("node{i}_failures"))
                .set(n.failures as f64);
        }
        Ok(FleetRun {
            merged,
            outcome,
            nodes,
            trace_json,
        })
    }

    /// Tell every node about every *other* node's cache endpoint
    /// (best-effort — an unreachable node just misses the refresh and gets
    /// re-advertised when a probe revives it).
    fn advertise_peer_caches(&self) {
        let n = self.registry.len();
        if n < 2 {
            return;
        }
        let addrs: Vec<SocketAddr> = (0..n).map(|i| self.registry.client(i).addr).collect();
        for i in 0..n {
            let peers: Vec<SocketAddr> = addrs
                .iter()
                .copied()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, a)| a)
                .collect();
            match self.registry.client(i).advertise_peers(&peers) {
                Ok(_) => self.metrics.counter("fleet_peer_advertisements").inc(),
                Err(e) => self.tracer.event(
                    proof_obs::Level::Warn,
                    "proof_fleet",
                    format!("peer-cache advertisement to {} failed: {e}", addrs[i]),
                    Vec::new(),
                ),
            }
        }
    }

    /// Each node's lifetime remote-tier hit counter (`None` for nodes that
    /// cannot answer), index-aligned with the registry.
    fn scrape_remote_hits(&self) -> Vec<Option<u64>> {
        (0..self.registry.len())
            .map(|i| self.registry.client(i).cache_remote_hits().ok())
            .collect()
    }

    /// Fleet metrics as JSON: the registry snapshot plus per-node state.
    pub fn metrics_json(&self) -> String {
        let snap = self.metrics.snapshot();
        let mut m = Map::new();
        let mut counters = Map::new();
        for (name, v) in &snap.counters {
            counters.insert(name.clone(), Value::from(*v));
        }
        m.insert("counters".to_string(), Value::Object(counters));
        let mut gauges = Map::new();
        for (name, v) in &snap.gauges {
            gauges.insert(name.clone(), Value::from(*v));
        }
        m.insert("gauges".to_string(), Value::Object(gauges));
        m.insert(
            "nodes".to_string(),
            Value::Array(
                self.registry
                    .snapshot()
                    .iter()
                    .map(NodeSnapshot::to_value)
                    .collect(),
            ),
        );
        Value::Object(m).to_string()
    }

    /// Fleet metrics in Prometheus exposition format (`proof_fleet_`
    /// prefix).
    pub fn metrics_prometheus(&self) -> String {
        prometheus_text(&self.metrics.snapshot(), "proof_fleet_")
    }

    /// The coordinator's own exposition plus every reachable node's
    /// scraped exposition federated under a `node="<addr>"` label — one
    /// scrape endpoint for the whole fleet. Unreachable nodes are skipped
    /// (the coordinator's own `proof_fleet_` series still report them).
    pub fn metrics_prometheus_federated(&self) -> String {
        let mut out = self.metrics_prometheus();
        let scraped: Vec<(String, String)> = (0..self.registry.len())
            .filter_map(|i| {
                let client = self.registry.client(i);
                client
                    .scrape_prometheus()
                    .ok()
                    .map(|body| (client.addr.to_string(), body))
            })
            .collect();
        if !scraped.is_empty() {
            out.push_str(&federate_prometheus(&scraped));
        }
        out
    }

    /// The merged cross-node trace document of the most recent grid run.
    pub fn last_trace(&self) -> Option<&str> {
        self.last_trace.as_deref()
    }

    /// The coordinator's flight recorder: a bounded ring of structured
    /// scheduling events (dispatches, reschedules, health transitions).
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// Current per-node registry view.
    pub fn nodes(&self) -> Vec<NodeSnapshot> {
        self.registry.snapshot()
    }

    /// The shared metrics registry (counters survive across runs).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The ring collector behind the fleet tracer (span inspection).
    pub fn ring(&self) -> &Arc<RingCollector> {
        &self.ring
    }

    /// Shut down embedded daemons (drains their queues first). Remote
    /// nodes are untouched.
    pub fn shutdown(self) {
        for server in self.embedded {
            server.shutdown();
        }
    }
}

/// The single-node, in-process reference: execute every cell in canonical
/// order through the library pipeline and merge. No HTTP, no scheduling —
/// just the determinism baseline a fleet run must reproduce byte-for-byte.
pub fn run_grid_local(spec: &GridSpec) -> Result<String, ProofError> {
    spec.validate()?;
    let mut results = Vec::new();
    for (id, cell) in spec.cells().into_iter().enumerate() {
        let job = AnalysisJob::from_value(&cell.to_job_value()).map_err(ProofError::InvalidSpec)?;
        let report = job.execute()?;
        results.push((id, report.try_to_json()?));
    }
    proof_core::merge_cells(spec, &results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(json: &str) -> GridSpec {
        GridSpec::from_value(&serde_json::from_str(json).unwrap()).unwrap()
    }

    #[test]
    fn empty_topology_is_rejected() {
        assert!(matches!(
            Fleet::start(FleetConfig::default()),
            Err(FleetError::NoNodes)
        ));
    }

    #[test]
    fn local_reference_merges_every_cell() {
        let s = spec(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":11}"#);
        let merged = run_grid_local(&s).unwrap();
        let v: Value = serde_json::from_str(&merged).unwrap();
        assert_eq!(v["cells"].as_array().unwrap().len(), 2);
        assert!(
            v["sweep"].as_object().is_some(),
            "single-model batch grid is a sweep"
        );
        // determinism: a second run is byte-identical
        assert_eq!(merged, run_grid_local(&s).unwrap());
    }
}
