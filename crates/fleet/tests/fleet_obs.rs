//! Fleet observability-plane integration tests against live worker
//! daemons: federated per-node metrics on the coordinator's scrape
//! endpoint, the merged cross-node trace document, and the flight
//! recorder surface.

use proof_core::GridSpec;
use proof_fleet::{Fleet, FleetConfig};
use proof_serve::client::get;
use proof_serve::{ServeConfig, Server};
use serde_json::Value;
use std::collections::BTreeSet;

fn spec(json: &str) -> GridSpec {
    GridSpec::from_value(&serde_json::from_str(json).unwrap()).unwrap()
}

fn daemon() -> Server {
    Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap()
}

/// The acceptance criterion for metrics federation: after a grid run over
/// two live daemons, the coordinator's Prometheus endpoint carries each
/// node's own series under a `node="<addr>"` label, next to the
/// coordinator's `proof_fleet_` series.
#[test]
fn coordinator_scrape_federates_both_live_daemons() {
    let (a, b) = (daemon(), daemon());
    let fleet = Fleet::start(FleetConfig::remote(vec![a.addr(), b.addr()])).unwrap();
    let s = spec(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":21}"#);
    let run = fleet.run_grid(&s).unwrap();
    assert_eq!(run.outcome.results.len(), 2);

    let prom = fleet.metrics_prometheus_federated();
    assert!(prom.contains("proof_fleet_fleet_completed 2"), "{prom}");
    for addr in [a.addr(), b.addr()] {
        let labeled = format!("proof_serve_jobs_done_total{{node=\"{addr}\"}}");
        assert!(prom.contains(&labeled), "missing {labeled} in:\n{prom}");
        // per-node latency histograms survive federation intact
        let bucket = format!("proof_serve_job_execute_us_bucket{{node=\"{addr}\",le=\"+Inf\"}}");
        assert!(prom.contains(&bucket), "missing {bucket} in:\n{prom}");
    }
    // with the 2-shard grid least-loaded over two idle nodes, each daemon
    // executed exactly one job
    for addr in [a.addr(), b.addr()] {
        assert!(
            prom.contains(&format!("proof_serve_jobs_done_total{{node=\"{addr}\"}} 1")),
            "{prom}"
        );
    }
    // exactly one exposition per family: HELP/TYPE not duplicated per node
    let type_lines = prom
        .lines()
        .filter(|l| *l == "# TYPE proof_serve_jobs_done_total counter")
        .count();
    assert_eq!(type_lines, 1, "{prom}");

    fleet.shutdown();
    a.shutdown();
    b.shutdown();
}

/// The merged trace covers every node: a synthesized coordinator track
/// (`fleet_run` + one correctly parented `fleet_shard` per shard) plus one
/// process track per daemon, with job spans re-parented onto their shard
/// and the run-varying fields (`addr`, `job`, `remote_parent`) gone.
#[test]
fn merged_trace_has_one_track_per_node_and_clean_parenting() {
    let (a, b) = (daemon(), daemon());
    let fleet = Fleet::start(FleetConfig::remote(vec![a.addr(), b.addr()])).unwrap();
    let s = spec(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":22}"#);
    let run = fleet.run_grid(&s).unwrap();

    let doc: Value = serde_json::from_str(&run.trace_json).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();

    let run_span = events
        .iter()
        .find(|e| e["name"] == "fleet_run")
        .expect("fleet_run present");
    assert_eq!(run_span["pid"].as_u64(), Some(1));
    assert_eq!(run_span["args"]["parent"].as_u64(), Some(0));
    assert_eq!(run_span["args"]["shards"].as_u64(), Some(2));

    let shard_spans: Vec<&Value> = events
        .iter()
        .filter(|e| e["name"] == "fleet_shard")
        .collect();
    assert_eq!(shard_spans.len(), 2);
    for sp in &shard_spans {
        assert_eq!(sp["args"]["parent"], run_span["args"]["span"]);
    }

    // both daemons contributed their own process track (pids 2 and 3),
    // and the coordinator is pid 1
    let pids: BTreeSet<u64> = events.iter().map(|e| e["pid"].as_u64().unwrap()).collect();
    assert_eq!(pids, [1u64, 2, 3].into_iter().collect::<BTreeSet<u64>>());

    // every job span hangs off a fleet_shard, carries the canonical shard
    // index, and no run-varying field leaks into the document
    let jobs: Vec<&Value> = events.iter().filter(|e| e["name"] == "job").collect();
    assert_eq!(jobs.len(), 2);
    for job in &jobs {
        let anchor = shard_spans
            .iter()
            .find(|sp| sp["args"]["span"] == job["args"]["parent"])
            .expect("job parented onto its fleet_shard");
        assert_eq!(anchor["args"]["shard"], job["args"]["shard"]);
    }
    assert!(!run.trace_json.contains("\"addr\""), "{}", run.trace_json);
    assert!(!run.trace_json.contains("\"remote_parent\""));
    assert!(!run.trace_json.contains("\"job\":"));
    // pipeline stage spans rode along under the job spans
    assert!(events.iter().any(|e| e["name"] == "compile"));

    // the same document is what the coordinator serves afterwards
    assert_eq!(fleet.last_trace().as_deref(), Some(run.trace_json.as_str()));

    fleet.shutdown();
    a.shutdown();
    b.shutdown();
}

/// The worker adopted the fleet's trace: its job spans live in the
/// coordinator's trace id, reachable over `GET /trace/<id>?format=spans`
/// on the worker — the propagation link the merge is built from.
#[test]
fn workers_adopt_the_fleet_trace_end_to_end() {
    let a = daemon();
    let fleet = Fleet::start(FleetConfig::remote(vec![a.addr()])).unwrap();
    let s = spec(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1],"seed":23}"#);
    let run = fleet.run_grid(&s).unwrap();
    assert_eq!(run.outcome.shards.len(), 1);

    // the flight recorder saw the dispatch and the run bracketing it
    let flight: Value = serde_json::from_str(&fleet.flight().to_json()).unwrap();
    let kinds: Vec<&str> = flight["events"]
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|e| e["kind"].as_str())
        .collect();
    assert!(kinds.contains(&"run"), "{kinds:?}");
    assert!(kinds.contains(&"dispatch"), "{kinds:?}");

    // the worker's own status page shows the job under the fleet's trace
    let job_id = run.outcome.shards[0].job_id;
    let (status, body) = get(a.addr(), &format!("/jobs/{job_id}")).unwrap();
    assert_eq!(status, 200);
    let v: Value = serde_json::from_str(&body).unwrap();
    let trace = v["trace"].as_u64().expect("job carries its trace id");
    assert!(
        v["remote_parent"].as_u64().is_some(),
        "job records the coordinator's parent span: {body}"
    );
    let (status, spans) = get(a.addr(), &format!("/trace/{trace}?format=spans")).unwrap();
    assert_eq!(status, 200, "{spans}");
    let doc: Value = serde_json::from_str(&spans).unwrap();
    assert!(
        doc["spans"]
            .as_array()
            .unwrap()
            .iter()
            .any(|sp| sp["name"] == "job"),
        "{spans}"
    );

    fleet.shutdown();
    a.shutdown();
}
