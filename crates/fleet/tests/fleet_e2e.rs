//! End-to-end fleet tests: the determinism contract (merged artifact
//! byte-identical to the single-node reference regardless of topology) and
//! fault-aware rescheduling against dead, wedged, and dying nodes.

use proof_core::GridSpec;
use proof_fleet::{run_grid_local, DispatcherConfig, Fleet, FleetConfig, NodeState};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

fn spec(json: &str) -> GridSpec {
    GridSpec::from_value(&serde_json::from_str(json).unwrap()).unwrap()
}

/// An address that refuses every connection: bind, record, drop.
fn refused_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap()
}

/// A worker that looks alive exactly once, accepts every job, and never
/// finishes any of them: the first `GET /healthz` reports healthy (so the
/// registry trusts it), `POST /jobs` returns a job id, `GET /jobs/<id>`
/// says `running` forever, and every later health probe fails — the shape
/// of a daemon that wedged mid-job.
fn stuck_worker() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut healthz_served = false;
        for stream in listener.incoming() {
            let Ok(mut s) = stream else { continue };
            let mut head = Vec::new();
            let mut byte = [0u8; 1];
            while !head.ends_with(b"\r\n\r\n") && head.len() < 8192 {
                match s.read(&mut byte) {
                    Ok(1) => head.push(byte[0]),
                    _ => break,
                }
            }
            let head = String::from_utf8_lossy(&head).to_string();
            let line = head.lines().next().unwrap_or("").to_string();
            if let Some(len) = head.lines().find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .and_then(|v| v.trim().parse::<usize>().ok())
            }) {
                let mut body = vec![0u8; len.min(1 << 20)];
                let _ = s.read_exact(&mut body);
            }
            let (status, body) = if line.starts_with("GET /healthz") {
                if healthz_served {
                    (500, r#"{"error":"wedged"}"#)
                } else {
                    healthz_served = true;
                    (
                        200,
                        r#"{"status":"ok","queue_depth":0,"queue_capacity":64,"workers":1,"in_flight":0}"#,
                    )
                }
            } else if line.starts_with("POST /jobs") {
                (201, r#"{"id":1,"status":"queued"}"#)
            } else if line.starts_with("GET /jobs/") {
                (200, r#"{"status":"running"}"#)
            } else {
                (404, r#"{"error":"no route"}"#)
            };
            let _ = write!(
                s,
                "HTTP/1.1 {status} X\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            );
        }
    });
    addr
}

#[test]
fn merged_report_is_byte_identical_across_topologies() {
    let s = spec(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2,4],"seed":13}"#);
    let reference = run_grid_local(&s).unwrap();

    let one = Fleet::start(FleetConfig::local(1)).unwrap();
    let run1 = one.run_grid(&s).unwrap();
    one.shutdown();
    assert_eq!(
        run1.merged, reference,
        "1-node fleet differs from local reference"
    );

    let two = Fleet::start(FleetConfig::local(2)).unwrap();
    let run2 = two.run_grid(&s).unwrap();
    two.shutdown();
    assert_eq!(
        run2.merged, reference,
        "2-node fleet differs from local reference"
    );
    assert_eq!(run2.outcome.results.len(), 3);
    assert_eq!(
        run2.outcome.rescheduled, 0,
        "healthy fleet should not reschedule"
    );
    // both nodes were probed at run start
    assert!(run2.outcome.probes >= 2);
}

#[test]
fn dead_node_shards_reschedule_onto_survivors() {
    let s = spec(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":7}"#);
    let reference = run_grid_local(&s).unwrap();

    let config = FleetConfig {
        nodes: vec![refused_addr()],
        local_daemons: 1,
        request_timeout: Duration::from_millis(500),
        ..FleetConfig::default()
    };
    let fleet = Fleet::start(config).unwrap();
    let run = fleet.run_grid(&s).unwrap();

    assert_eq!(
        run.merged, reference,
        "fault path changed the artifact bytes"
    );
    assert!(
        run.outcome.rescheduled >= 1,
        "dead node never triggered a reschedule"
    );
    assert!(
        run.outcome.probe_failures >= 1,
        "dead node never failed a probe"
    );
    assert!(
        run.nodes.iter().any(|n| n.state == NodeState::Dead),
        "refusing node should be marked dead: {:?}",
        run.nodes
    );
    // the counters the coordinator exports carry the same story
    let metrics: Value = serde_json::from_str(&fleet.metrics_json()).unwrap();
    assert!(metrics["counters"]["fleet_rescheduled"].as_u64().unwrap() >= 1);
    assert!(
        metrics["counters"]["fleet_probe_failures"]
            .as_u64()
            .unwrap()
            >= 1
    );
    fleet.shutdown();
}

#[test]
fn wedged_node_times_out_and_shards_complete_elsewhere() {
    let s = spec(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":21}"#);
    let reference = run_grid_local(&s).unwrap();

    let config = FleetConfig {
        nodes: vec![stuck_worker()],
        local_daemons: 1,
        request_timeout: Duration::from_millis(500),
        dispatcher: DispatcherConfig {
            shard_timeout: Duration::from_millis(1500),
            max_shard_attempts: 5,
            ..DispatcherConfig::default()
        },
        ..FleetConfig::default()
    };
    let fleet = Fleet::start(config).unwrap();
    let run = fleet.run_grid(&s).unwrap();
    fleet.shutdown();

    assert_eq!(
        run.merged, reference,
        "timeout path changed the artifact bytes"
    );
    assert!(
        run.outcome.rescheduled >= 1,
        "wedged node's shard should have been rescheduled after its timeout"
    );
    assert_eq!(
        run.outcome.results.len(),
        2,
        "every cell must still resolve"
    );
}

/// A fresh node joining a fleet with a warm peer serves its shards from
/// the peer's cache instead of re-simulating: the coordinator advertises
/// peer endpoints, the new node's tiered store walks to the remote tier,
/// and the merged artifact stays byte-identical to the cold reference.
#[test]
fn fresh_node_pulls_shards_from_warm_peer_cache() {
    let s = spec(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":7}"#);
    let reference = run_grid_local(&s).unwrap();

    // warm two daemons: each builds one shard and publishes it to the
    // other, so both end up holding both cells
    let a = proof_serve::Server::start(proof_serve::ServeConfig::default()).unwrap();
    let b = proof_serve::Server::start(proof_serve::ServeConfig::default()).unwrap();
    let b_addr = b.addr();
    let warmup = Fleet::start(FleetConfig::remote(vec![a.addr(), b_addr])).unwrap();
    let warm_run = warmup.run_grid(&s).unwrap();
    warmup.shutdown();
    assert_eq!(warm_run.merged, reference);
    a.shutdown();

    // a fresh cold node replaces A; its shard must come from warm B
    let c = proof_serve::Server::start(proof_serve::ServeConfig::default()).unwrap();
    let fleet = Fleet::start(FleetConfig::remote(vec![c.addr(), b_addr])).unwrap();
    let run = fleet.run_grid(&s).unwrap();

    assert_eq!(
        run.merged, reference,
        "remote-tier hits changed the artifact bytes"
    );
    let metrics: Value = serde_json::from_str(&fleet.metrics_json()).unwrap();
    assert!(
        metrics["counters"]["fleet_cache_remote_hits"]
            .as_u64()
            .unwrap()
            >= 1,
        "fresh node never hit the warm peer's cache: {metrics}"
    );
    assert!(
        metrics["counters"]["fleet_peer_advertisements"]
            .as_u64()
            .unwrap()
            >= 2
    );
    fleet.shutdown();
    c.shutdown();
    b.shutdown();
}

#[test]
fn node_killed_mid_run_still_produces_the_complete_report() {
    let s = spec(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2,4,8],"seed":3}"#);
    let reference = run_grid_local(&s).unwrap();

    let a = proof_serve::Server::start(proof_serve::ServeConfig::default()).unwrap();
    let b = proof_serve::Server::start(proof_serve::ServeConfig::default()).unwrap();
    let fleet = Fleet::start(FleetConfig::remote(vec![a.addr(), b.addr()])).unwrap();

    // kill node B as soon as the fleet has finished its first shard, so the
    // tail of the run sees a node that died mid-grid
    let completed = fleet.metrics().counter("fleet_completed");
    let killer = std::thread::spawn(move || {
        while completed.get() == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        b.shutdown();
    });

    let run = fleet.run_grid(&s).unwrap();
    killer.join().unwrap();
    a.shutdown();
    fleet.shutdown();

    assert_eq!(
        run.merged, reference,
        "mid-run node death changed the artifact bytes"
    );
    assert_eq!(
        run.outcome.results.len(),
        4,
        "every cell must still resolve"
    );
}
