//! Streaming end-to-end: an async grid submitted over the coordinator's
//! HTTP surface streams per-shard progress while shards are stalled by
//! fault injection, the whole read surface (`/healthz` with `alive`,
//! `/nodes`, `/grid/trace`) answers 200 mid-run, and the finished artifact
//! is byte-identical to the synchronous path and the in-process reference.
//!
//! The stall is installed programmatically (the fault plan is
//! process-global, so both embedded daemons stall equally — enough to
//! spread completions out over ~1s of wall clock). This file holds only
//! this test: fault plans installed here must not leak into parallel tests
//! of another binary.

use proof_core::GridSpec;
use proof_fleet::{run_grid_local, Fleet, FleetConfig, FleetServer, FleetServerConfig};
use proof_obs::fault::{self, FaultPlan};
use proof_serve::client::{get, post};
use serde_json::Value;
use std::time::{Duration, Instant};

#[test]
fn async_grid_streams_progress_and_matches_sync_bytes() {
    let config = FleetConfig {
        local_workers: 1,
        ..FleetConfig::local(2)
    };
    let fleet = Fleet::start(config).unwrap();
    let server = FleetServer::start(fleet, FleetServerConfig::default()).unwrap();
    let addr = server.addr();

    // warm-up sync run (no fault): seeds `/grid/trace` so the mid-run
    // assertions below can demand 200 from the whole read surface
    let warm = r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1],"seed":5}"#;
    let (status, _) = post(addr, "/grid", warm).unwrap();
    assert_eq!(status, 200);

    // every shard now stalls 300 ms at the metrics stage: 6 shards over
    // two single-worker daemons spread completions across ~1s
    fault::install(FaultPlan::parse("metrics:stall:300").unwrap());

    let spec_json =
        r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2,3,4,6,8],"seed":21}"#;
    let (status, body) = post(addr, "/grid?mode=async", spec_json).unwrap();
    assert_eq!(status, 202, "{body}");
    let v: Value = serde_json::from_str(&body).unwrap();
    let run_id = v["run_id"].as_u64().unwrap();
    assert_eq!(v["shards"].as_u64(), Some(6));

    // immediately after submit the run cannot have finished: result is 202
    let (status, body) = get(addr, &format!("/grid/{run_id}/result")).unwrap();
    assert_eq!(status, 202, "{body}");
    let v: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["state"], "running");

    // poll status with a monotone since cursor until done, recording the
    // partial completion counts observed mid-run
    let mut cursor = 0u64;
    let mut mid_run_completed: Vec<u64> = Vec::new();
    let mut saw_running_healthz = false;
    let deadline = Instant::now() + Duration::from_secs(60);
    let final_status = loop {
        assert!(Instant::now() < deadline, "streaming run never finished");
        let (status, body) = get(addr, &format!("/grid/{run_id}/status?since={cursor}")).unwrap();
        assert_eq!(status, 200, "{body}");
        let s: Value = serde_json::from_str(&body).unwrap();
        let seq = s["seq"].as_u64().unwrap();
        assert!(seq >= cursor, "seq cursor regressed: {seq} < {cursor}");
        for e in s["events"].as_array().unwrap() {
            let eseq = e["seq"].as_u64().unwrap();
            assert!(eseq > cursor, "event {eseq} at or before cursor {cursor}");
        }
        cursor = seq;
        let completed = s["completed"].as_u64().unwrap();
        if s["state"] == "running" {
            mid_run_completed.push(completed);

            // the whole read surface answers 200 mid-run
            let (status, h) = get(addr, "/healthz").unwrap();
            assert_eq!(status, 200);
            let h: Value = serde_json::from_str(&h).unwrap();
            assert!(
                h.get("alive").is_some(),
                "alive must not vanish mid-run: {h}"
            );
            if h["running"].as_bool() == Some(true) {
                saw_running_healthz = true;
            }
            let (status, nodes) = get(addr, "/nodes").unwrap();
            assert_eq!(status, 200);
            assert_eq!(
                serde_json::from_str::<Value>(&nodes)
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .len(),
                2
            );
            let (status, _) = get(addr, "/grid/trace").unwrap();
            assert_eq!(status, 200, "trace of the warm-up run serves mid-run");
        } else {
            break s;
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(final_status["state"], "done", "{final_status}");
    assert_eq!(final_status["completed"].as_u64(), Some(6));
    assert_eq!(final_status["pending"].as_u64(), Some(0));
    assert_eq!(final_status["in_flight"].as_u64(), Some(0));

    // progress streamed: completion counts observed mid-run are monotone
    // and include a strict partial (0 < c < 6) before the run finished
    assert!(
        mid_run_completed.windows(2).all(|w| w[0] <= w[1]),
        "completed regressed: {mid_run_completed:?}"
    );
    assert!(
        mid_run_completed.iter().any(|&c| c > 0 && c < 6),
        "never observed a partial sweep: {mid_run_completed:?}"
    );
    assert!(saw_running_healthz, "healthz never reported running:true");

    // the finished artifact is byte-identical to the in-process reference
    let (status, merged) = get(addr, &format!("/grid/{run_id}/result")).unwrap();
    assert_eq!(status, 200);
    let spec = GridSpec::from_value(&serde_json::from_str(spec_json).unwrap()).unwrap();
    assert_eq!(merged, run_grid_local(&spec).unwrap());

    // ... and to the synchronous path (fault cleared: bytes must not care)
    fault::clear();
    let (status, sync_merged) = post(addr, "/grid", spec_json).unwrap();
    assert_eq!(status, 200);
    assert_eq!(merged, sync_merged, "async and sync artifacts diverge");

    server.shutdown();
}
