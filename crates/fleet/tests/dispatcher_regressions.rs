//! Dispatcher regression tests for the liveness bugs fixed alongside the
//! weighted scheduler:
//!
//! 1. a saturated node whose status GETs answer only 429 must release its
//!    shard at the deadline (the old `poll_inflight` skipped the deadline
//!    check on `WorkerError::Busy` and held the shard forever);
//! 2. a node that 429'd with a long `Retry-After`, died, and was
//!    probe-revived must receive dispatches immediately (the old
//!    `note_probe` left the pre-death holdoff in place).
//!
//! Both tests run the dispatcher in a worker thread behind a watchdog:
//! pre-fix, each scenario wedges the dispatch loop forever, which shows up
//! here as a watchdog timeout instead of a hung test suite.

use proof_core::GridSpec;
use proof_fleet::{run_grid_local, DispatcherConfig, Fleet, FleetConfig, FleetError, FleetRun};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn spec(json: &str) -> GridSpec {
    GridSpec::from_value(&serde_json::from_str(json).unwrap()).unwrap()
}

/// Serve one scripted HTTP exchange: read the request head (and drain the
/// body), hand the request line to `respond`, write the reply.
fn serve_scripted(
    listener: TcpListener,
    respond: impl Fn(&str) -> (u16, String, Vec<(&'static str, String)>) + Send + 'static,
) {
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut s) = stream else { continue };
            let mut head = Vec::new();
            let mut byte = [0u8; 1];
            while !head.ends_with(b"\r\n\r\n") && head.len() < 8192 {
                match s.read(&mut byte) {
                    Ok(1) => head.push(byte[0]),
                    _ => break,
                }
            }
            let head = String::from_utf8_lossy(&head).to_string();
            let line = head.lines().next().unwrap_or("").to_string();
            if let Some(len) = head.lines().find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .and_then(|v| v.trim().parse::<usize>().ok())
            }) {
                let mut body = vec![0u8; len.min(1 << 20)];
                let _ = s.read_exact(&mut body);
            }
            let (status, body, extra) = respond(&line);
            let mut headers = String::new();
            for (k, v) in &extra {
                headers.push_str(&format!("{k}: {v}\r\n"));
            }
            let _ = write!(
                s,
                "HTTP/1.1 {status} X\r\ncontent-type: application/json\r\n{headers}content-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            );
        }
    });
}

/// A worker that accepts every job but answers every status GET with 429 —
/// alive and healthy by every probe, yet the shard can never resolve on
/// it. The shape of a daemon wedged behind admission control.
fn busy_poller_worker() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let next_id = AtomicU64::new(1);
    serve_scripted(listener, move |line| {
        if line.starts_with("GET /healthz") {
            (
                200,
                r#"{"status":"ok","queue_depth":0,"queue_capacity":64,"workers":1,"in_flight":1}"#
                    .to_string(),
                vec![],
            )
        } else if line.starts_with("POST /jobs") {
            let id = next_id.fetch_add(1, Ordering::Relaxed);
            (201, format!(r#"{{"id":{id},"status":"queued"}}"#), vec![])
        } else if line.starts_with("GET /jobs/") {
            (
                429,
                r#"{"error":"saturated"}"#.to_string(),
                vec![("Retry-After", "1".to_string())],
            )
        } else if line.starts_with("POST /cache/peers") {
            (200, r#"{"peers":1}"#.to_string(), vec![])
        } else {
            (404, r#"{"error":"no route"}"#.to_string(), vec![])
        }
    });
    addr
}

/// Run `fleet.run_grid` on a worker thread behind a watchdog: pre-fix both
/// regression scenarios wedge the dispatch loop forever, and a wedged test
/// should fail loudly rather than hang the suite.
fn run_with_watchdog(fleet: Fleet, s: GridSpec, budget: Duration) -> Result<FleetRun, FleetError> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = fleet.run_grid(&s);
        fleet.shutdown();
        let _ = tx.send(result);
    });
    rx.recv_timeout(budget)
        .expect("dispatcher wedged: run_grid never returned within the watchdog budget")
}

#[test]
fn node_answering_only_429s_releases_its_shard_at_the_deadline() {
    let s = spec(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":31}"#);
    let reference = run_grid_local(&s).unwrap();

    let config = FleetConfig {
        nodes: vec![busy_poller_worker()],
        local_daemons: 1,
        request_timeout: Duration::from_millis(500),
        dispatcher: DispatcherConfig {
            shard_timeout: Duration::from_millis(800),
            max_shard_attempts: 5,
            ..DispatcherConfig::default()
        },
        ..FleetConfig::default()
    };
    let fleet = Fleet::start(config).unwrap();
    let run = run_with_watchdog(fleet, s, Duration::from_secs(60)).unwrap();

    assert_eq!(
        run.merged, reference,
        "429-wedged node changed the artifact bytes"
    );
    assert_eq!(run.outcome.results.len(), 2, "every cell must resolve");
    assert!(
        run.outcome.rescheduled >= 1,
        "the shard stuck behind 429s was never rescheduled at its deadline"
    );
}

/// A worker that is healthy forever, accepts jobs up to the dispatcher's
/// cap, and never finishes any of them — it keeps the run (and its pending
/// queue) alive while the node under test dies and revives.
fn sponge_worker() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let next_id = AtomicU64::new(1);
    serve_scripted(listener, move |line| {
        if line.starts_with("GET /healthz") {
            (
                200,
                r#"{"status":"ok","queue_depth":0,"queue_capacity":64,"workers":1,"in_flight":0}"#
                    .to_string(),
                vec![],
            )
        } else if line.starts_with("POST /jobs") {
            let id = next_id.fetch_add(1, Ordering::Relaxed);
            (201, format!(r#"{{"id":{id},"status":"queued"}}"#), vec![])
        } else if line.starts_with("GET /jobs/") {
            (200, r#"{"status":"running"}"#.to_string(), vec![])
        } else if line.starts_with("POST /cache/peers") {
            (200, r#"{"peers":1}"#.to_string(), vec![])
        } else {
            (404, r#"{"error":"no route"}"#.to_string(), vec![])
        }
    });
    addr
}

/// A worker scripted through the revival scenario: healthy once, then its
/// first submission 429s with a 60 s `Retry-After`; two probe failures
/// kill it; every later probe succeeds (the daemon "restarted"). Jobs
/// accepted after revival fail instantly so the run ends without needing
/// real reports — the assertion is about *when* dispatch resumes.
fn dying_then_revived_worker() -> (SocketAddr, Arc<AtomicU64>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let submits = Arc::new(AtomicU64::new(0));
    let submits_in = Arc::clone(&submits);
    let healthz_count = AtomicU64::new(0);
    let next_id = AtomicU64::new(1);
    serve_scripted(listener, move |line| {
        if line.starts_with("GET /healthz") {
            let n = healthz_count.fetch_add(1, Ordering::Relaxed) + 1;
            if n == 2 || n == 3 {
                (500, r#"{"error":"dying"}"#.to_string(), vec![])
            } else {
                (
                    200,
                    r#"{"status":"ok","queue_depth":0,"queue_capacity":64,"workers":1,"in_flight":0}"#
                        .to_string(),
                    vec![],
                )
            }
        } else if line.starts_with("POST /jobs") {
            let n = submits_in.fetch_add(1, Ordering::Relaxed) + 1;
            if n == 1 {
                (
                    429,
                    r#"{"error":"full"}"#.to_string(),
                    vec![("Retry-After", "60".to_string())],
                )
            } else {
                let id = next_id.fetch_add(1, Ordering::Relaxed);
                (201, format!(r#"{{"id":{id},"status":"queued"}}"#), vec![])
            }
        } else if line.starts_with("GET /jobs/") {
            (
                200,
                r#"{"status":"failed","error":"scripted failure"}"#.to_string(),
                vec![],
            )
        } else if line.starts_with("POST /cache/peers") {
            (200, r#"{"peers":0}"#.to_string(), vec![])
        } else {
            (404, r#"{"error":"no route"}"#.to_string(), vec![])
        }
    });
    (addr, submits)
}

#[test]
fn revived_node_with_a_stale_backoff_dispatches_immediately() {
    // the node under test 429s its first submission with Retry-After: 60,
    // dies, and is probe-revived ~150 ms in; the sponge peer keeps the
    // run alive (and the pending queue full) throughout. Post-fix, the
    // revived node sees its second submission within the probe cadence;
    // pre-fix the stale 60 s holdoff keeps it undispatchable and the
    // deadline below fires.
    let s =
        spec(r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2,3,4,5,6],"seed":5}"#);
    let (addr, submits) = dying_then_revived_worker();
    let config = FleetConfig {
        nodes: vec![addr, sponge_worker()],
        request_timeout: Duration::from_millis(500),
        dispatcher: DispatcherConfig {
            probe_interval: Duration::from_millis(50),
            ..DispatcherConfig::default()
        },
        ..FleetConfig::default()
    };
    let fleet = Fleet::start(config).unwrap();
    let started = Instant::now();
    // detached: neither scripted worker can produce a real report, so the
    // run itself cannot complete — the assertion is purely about when the
    // revived node is dispatched to again
    std::thread::spawn(move || {
        let _ = fleet.run_grid(&s);
        fleet.shutdown();
    });
    while submits.load(Ordering::Relaxed) < 2 {
        assert!(
            started.elapsed() < Duration::from_secs(15),
            "no post-revival dispatch after {:?} — the stale 60s backoff was not cleared \
             on the dead node's healthy probe",
            started.elapsed()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
