//! Cross-crate integration tests: the full PRoof pipeline (model → backend
//! compile → builtin profile → layer mapping → metrics → roofline) across
//! backends and platforms.

use proof::core::{
    map_layers, profile_model, render_roofline_svg, AnalyzeRepr, MetricMode, OptimizedRepr,
    SvgOptions,
};
use proof::hw::PlatformId;
use proof::ir::{DType, Graph};
use proof::models::ModelId;
use proof::runtime::{compile, BackendFlavor, SessionConfig};

fn profile(
    model: ModelId,
    batch: u64,
    platform: PlatformId,
    flavor: BackendFlavor,
    mode: MetricMode,
) -> proof::core::ProfileReport {
    let g = model.build(batch);
    let p = platform.spec();
    let cfg = SessionConfig::new(p.preferred_dtype());
    profile_model(&g, &p, flavor, &cfg, mode).expect("profile")
}

#[test]
fn every_zoo_model_profiles_on_a100_predicted() {
    for model in ModelId::ALL {
        let batch = if model == ModelId::StableDiffusionUnet {
            1
        } else {
            4
        };
        let r = profile(
            model,
            batch,
            PlatformId::A100,
            BackendFlavor::TrtLike,
            MetricMode::Predicted,
        );
        assert_eq!(r.unresolved_layers, 0, "{model:?}");
        assert!(r.total_latency_ms > 0.0, "{model:?}");
        assert!(r.total_flops > 0, "{model:?}");
        // every profiled point obeys the roofline (with small tolerance)
        for l in &r.layers {
            let attainable = r.ceiling.attainable_gflops(l.intensity());
            assert!(
                l.achieved_gflops() <= attainable * 1.1 + 1.0,
                "{model:?}/{}: {} > {}",
                l.name,
                l.achieved_gflops(),
                attainable
            );
        }
    }
}

#[test]
fn mapping_matches_runtime_truth_for_all_flavors_and_several_models() {
    let cases = [
        (ModelId::ResNet50, BackendFlavor::TrtLike),
        (ModelId::ResNet50, BackendFlavor::OrtLike),
        (ModelId::ResNet50, BackendFlavor::OvLike),
        (ModelId::SwinTiny, BackendFlavor::TrtLike),
        (ModelId::MlpMixerB16, BackendFlavor::OrtLike),
        (ModelId::EfficientNetV2S, BackendFlavor::OvLike),
        (ModelId::DistilBertBase, BackendFlavor::TrtLike),
    ];
    for (model, flavor) in cases {
        let g = model.build(2);
        let platform = PlatformId::A100.spec();
        let cfg = SessionConfig::new(DType::F16);
        let compiled = compile(&g, flavor, &platform, &cfg).unwrap();
        let mapping = map_layers(
            OptimizedRepr::new(AnalyzeRepr::new(&g, DType::F16)),
            &compiled.builtin_profile(),
            flavor,
        );
        assert!(
            mapping.unresolved.is_empty(),
            "{model:?}/{flavor:?}: {:?}",
            mapping.unresolved
        );
        assert!(
            mapping.coverage() > 0.99,
            "{model:?}/{flavor:?}: coverage {}",
            mapping.coverage()
        );
        // non-noop membership equality against the runtime's ground truth
        let truth: Vec<Vec<_>> = compiled
            .layers
            .iter()
            .filter(|l| !l.kernels.is_empty() && !l.is_reorder)
            .map(|l| {
                let mut v: Vec<_> = l
                    .truth_members()
                    .iter()
                    .copied()
                    .filter(|&n| !g.node(n).op.is_noop_at_inference())
                    .collect();
                v.sort_unstable();
                v
            })
            .collect();
        let derived: Vec<Vec<_>> = mapping
            .layers
            .iter()
            .filter(|l| !l.is_reorder)
            .map(|l| {
                let mut v: Vec<_> = mapping
                    .repr
                    .group(l.group.unwrap())
                    .members
                    .iter()
                    .copied()
                    .filter(|&n| !g.node(n).op.is_noop_at_inference())
                    .collect();
                v.sort_unstable();
                v
            })
            .collect();
        assert_eq!(truth, derived, "{model:?}/{flavor:?}");
    }
}

#[test]
fn predicted_and_measured_agree_within_table4_bands() {
    // the paper's worst observed diffs: −24 % FLOP, −8 % memory
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    for model in [ModelId::ResNet50, ModelId::MobileNetV2x10, ModelId::ViTTiny] {
        let g = model.build(16);
        let pred = profile_model(
            &g,
            &platform,
            BackendFlavor::TrtLike,
            &cfg,
            MetricMode::Predicted,
        )
        .unwrap();
        let meas = profile_model(
            &g,
            &platform,
            BackendFlavor::TrtLike,
            &cfg,
            MetricMode::Measured,
        )
        .unwrap();
        let flop_ratio = pred.total_flops as f64 / meas.total_flops as f64;
        let mem_ratio = pred.total_memory_bytes as f64 / meas.total_memory_bytes as f64;
        assert!(
            (0.7..1.15).contains(&flop_ratio),
            "{model:?} flop ratio {flop_ratio}"
        );
        assert!(
            (0.85..1.1).contains(&mem_ratio),
            "{model:?} mem ratio {mem_ratio}"
        );
    }
}

#[test]
fn model_json_roundtrips_through_the_full_pipeline() {
    let g = ModelId::MobileNetV2x05.build(2);
    let restored = Graph::from_json(&g.to_json()).expect("roundtrip");
    assert_eq!(g, restored);
    let platform = PlatformId::Xeon6330.spec();
    let cfg = SessionConfig::new(DType::F32);
    let a = profile_model(
        &g,
        &platform,
        BackendFlavor::OrtLike,
        &cfg,
        MetricMode::Predicted,
    )
    .unwrap();
    let b = profile_model(
        &restored,
        &platform,
        BackendFlavor::OrtLike,
        &cfg,
        MetricMode::Predicted,
    )
    .unwrap();
    assert_eq!(a.total_flops, b.total_flops);
    assert_eq!(a.total_latency_ms, b.total_latency_ms);
}

#[test]
fn fusion_reduces_backend_layer_count_and_latency() {
    let g = ModelId::ResNet50.build(8);
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    let trt = compile(&g, BackendFlavor::TrtLike, &platform, &cfg).unwrap();
    let ov = compile(&g, BackendFlavor::OvLike, &platform, &cfg).unwrap();
    let count = |m: &proof::runtime::CompiledModel| {
        m.layers.iter().filter(|l| !l.kernels.is_empty()).count()
    };
    assert!(count(&trt) <= count(&ov));
    assert!(trt.end_to_end_latency_ms() <= ov.end_to_end_latency_ms() * 1.01);
}

#[test]
fn svg_renders_for_every_flavor() {
    let g = ModelId::ShuffleNetV2x05.build(4);
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    for flavor in [
        BackendFlavor::TrtLike,
        BackendFlavor::OrtLike,
        BackendFlavor::OvLike,
    ] {
        let r = profile_model(&g, &platform, flavor, &cfg, MetricMode::Predicted).unwrap();
        let svg = render_roofline_svg(&r.layerwise_chart("t"), &SvgOptions::default());
        assert!(svg.contains("</svg>"), "{flavor:?}");
    }
}

#[test]
fn cpu_platforms_run_fp32_without_tensor_core_artifacts() {
    let r = profile(
        ModelId::ResNet34,
        8,
        PlatformId::Xeon6330,
        BackendFlavor::OrtLike,
        MetricMode::Predicted,
    );
    // achieved must stay below the CPU's vector fp32 peak
    assert!(r.achieved_gflops() < PlatformId::Xeon6330.spec().peak_flops(DType::F32, false) / 1e9);
    assert!(r.achieved_gflops() > 0.0);
}

#[test]
fn measured_mode_charges_replay_overhead_proportional_to_kernels() {
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    let small = profile_model(
        &ModelId::MobileNetV2x05.build(2),
        &platform,
        BackendFlavor::TrtLike,
        &cfg,
        MetricMode::Measured,
    )
    .unwrap();
    let big = profile_model(
        &ModelId::SwinSmall.build(2),
        &platform,
        BackendFlavor::TrtLike,
        &cfg,
        MetricMode::Measured,
    )
    .unwrap();
    assert!(big.metric_collection_s > 2.0 * small.metric_collection_s);
}

#[test]
fn pipeline_spans_reach_the_facade_tracer_and_merge_into_one_trace() {
    // Tracing through the workspace facade: the pipeline stages record
    // spans into the shared ring, and the merged Chrome trace holds both
    // the stage spans and the compiled model's kernel timeline.
    let (_, ring) = proof::obs::shared_ring_tracer();
    let trace = proof::obs::new_trace_id();
    let prep = {
        let _root = proof::obs::span_in(trace, "profile");
        proof::core::prepare_stages(
            &ModelId::MobileNetV2x05.build(1),
            &PlatformId::A100.spec(),
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
        )
        .expect("prepare")
    };
    let spans = ring.trace_spans(trace);
    // root + the three prefix stages, all carrying this trace id
    assert!(spans.len() >= 4, "got {} spans", spans.len());
    for stage in ["profile", "compile", "builtin_profile", "map"] {
        assert!(
            spans.iter().any(|s| s.name == stage),
            "missing span {stage:?}"
        );
    }
    // the derived PipelineTrace matches what prepare_stages recorded
    let derived = proof::core::PipelineTrace::from_spans(&spans);
    assert_eq!(derived.stages.len(), prep.trace.stages.len());

    let doc = proof::core::merged_chrome_trace(&spans, Some(&prep.compiled.compiled));
    let v: serde_json::Value = serde_json::from_str(&doc).expect("valid trace JSON");
    let events = v["traceEvents"].as_array().unwrap();
    assert!(events.iter().any(|e| e["cat"] == "pipeline"));
    assert!(events.iter().any(|e| e["cat"] == "kernel"));
}
