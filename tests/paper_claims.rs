//! Calibration regression tests: the paper's quantitative claims, as bands.
//!
//! Absolute numbers come from our simulator substrate, so these assert
//! *shape*: signs of the Table 4 prediction diffs, the Table 5 speedup
//! factor, Table 6 monotonicities, the Table 7 orderings and the §4.6
//! budget-search result. EXPERIMENTS.md records exact values side by side.

use proof::core::{measure_achieved_peak, profile_model, AnalyzeRepr, MetricMode};
use proof::hw::{ClockConfig, JetsonPowerProfile, OrinNx, PlatformId};
use proof::ir::DType;
use proof::models::ModelId;
use proof::runtime::{BackendFlavor, SessionConfig};

fn predicted(model: ModelId, batch: u64, platform: PlatformId) -> proof::core::ProfileReport {
    let p = platform.spec();
    profile_model(
        &model.build(batch),
        &p,
        BackendFlavor::for_platform(&p),
        &SessionConfig::new(p.preferred_dtype()),
        MetricMode::Predicted,
    )
    .unwrap()
}

// ---------------------------------------------------------------- Table 3

#[test]
fn table3_gflop_within_five_percent_of_paper() {
    for model in ModelId::ALL {
        let t3 = model.table3();
        let gflop = AnalyzeRepr::new(&model.build(1), DType::F32).gflops();
        let diff = (gflop - t3.paper_gflop).abs() / t3.paper_gflop;
        assert!(
            diff < 0.05,
            "{}: {gflop:.3} vs paper {:.3}",
            t3.name,
            t3.paper_gflop
        );
    }
}

#[test]
fn table3_params_within_twelve_percent_of_paper() {
    for model in ModelId::ALL {
        let t3 = model.table3();
        let params_m = model.build(1).param_count() as f64 / 1e6;
        let diff = (params_m - t3.paper_params_m).abs() / t3.paper_params_m;
        // EfficientNetV2-S is the outlier (paper 23.9 M vs the reference
        // implementation's 21.5 M — see EXPERIMENTS.md)
        assert!(
            diff < 0.12,
            "{}: {params_m:.2} vs paper {:.2}",
            t3.name,
            t3.paper_params_m
        );
    }
}

// ---------------------------------------------------------------- Table 4

#[test]
fn table4_prediction_diff_signs_match_paper() {
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    // analytical FLOP below Hardware FLOP for the conv nets (padding and
    // depthwise overheads), with MobileNet the worst — paper ordering
    let mut diffs = Vec::new();
    for model in [
        ModelId::ResNet50,
        ModelId::MobileNetV2x10,
        ModelId::SwinSmall,
    ] {
        let g = model.build(32);
        let p = profile_model(
            &g,
            &platform,
            BackendFlavor::TrtLike,
            &cfg,
            MetricMode::Predicted,
        )
        .unwrap();
        let m = profile_model(
            &g,
            &platform,
            BackendFlavor::TrtLike,
            &cfg,
            MetricMode::Measured,
        )
        .unwrap();
        let d = p.total_flops as f64 / m.total_flops as f64 - 1.0;
        assert!(d < 0.0, "{model:?}: analytical above measured ({d})");
        diffs.push((model, d));
    }
    let mobilenet = diffs
        .iter()
        .find(|(m, _)| *m == ModelId::MobileNetV2x10)
        .unwrap()
        .1;
    let resnet = diffs
        .iter()
        .find(|(m, _)| *m == ModelId::ResNet50)
        .unwrap()
        .1;
    assert!(
        mobilenet < resnet,
        "MobileNet must show the larger gap (paper: −24% vs −2%)"
    );
    assert!(mobilenet < -0.15 && mobilenet > -0.35);
    assert!(resnet > -0.08);
}

#[test]
fn table4_profiling_overhead_is_orders_of_magnitude_above_analysis() {
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    let g = ModelId::ResNet50.build(32);
    let p = profile_model(
        &g,
        &platform,
        BackendFlavor::TrtLike,
        &cfg,
        MetricMode::Predicted,
    )
    .unwrap();
    let m = profile_model(
        &g,
        &platform,
        BackendFlavor::TrtLike,
        &cfg,
        MetricMode::Measured,
    )
    .unwrap();
    assert!(
        m.metric_collection_s > 100.0,
        "counter replay takes minutes"
    );
    assert!(p.metric_collection_s < 2.0, "analysis takes (sub)seconds");
}

// ---------------------------------------------------------------- Table 5

#[test]
fn table5_modified_shufflenet_wins_at_every_batch() {
    for (batch, paper_speedup) in [(1u64, 1.39), (128, 1.49), (2048, 1.64)] {
        let orig = predicted(ModelId::ShuffleNetV2x10, batch, PlatformId::A100);
        let modi = predicted(ModelId::ShuffleNetV2x10Mod, batch, PlatformId::A100);
        let speedup = orig.total_latency_ms / modi.total_latency_ms;
        assert!(
            (paper_speedup - 0.35..paper_speedup + 0.35).contains(&speedup),
            "bs={batch}: speedup {speedup:.2} vs paper {paper_speedup}"
        );
        // more FLOP, yet faster — the §4.5 trade
        assert!(modi.total_flops > orig.total_flops);
    }
}

#[test]
fn table5_bs2048_throughput_gain_matches_paper_band() {
    let orig = predicted(ModelId::ShuffleNetV2x10, 2048, PlatformId::A100);
    let modi = predicted(ModelId::ShuffleNetV2x10Mod, 2048, PlatformId::A100);
    let gain = modi.throughput_per_s() / orig.throughput_per_s() - 1.0;
    // paper: +64.45%
    assert!((0.4..0.9).contains(&gain), "gain {gain}");
}

// ---------------------------------------------------------------- Table 6

#[test]
fn table6_peaks_scale_with_the_right_clock() {
    let orin = PlatformId::OrinNx.spec();
    let at = |gpu, mem| {
        measure_achieved_peak(
            &orin.with_clocks(ClockConfig::new(gpu, mem)),
            BackendFlavor::TrtLike,
            DType::F16,
        )
        .unwrap()
    };
    let full = at(918, 3199);
    let low_mem = at(918, 2133);
    let low_gpu = at(510, 3199);
    // memory clock down: bandwidth falls, compute ~unchanged (rows 1 vs 2)
    assert!(low_mem.bw_gbs < 0.8 * full.bw_gbs);
    assert!((low_mem.gflops / full.gflops - 1.0).abs() < 0.05);
    // GPU clock down: compute falls proportionally (rows 1 vs 3)
    assert!((low_gpu.gflops / full.gflops - 510.0 / 918.0).abs() < 0.05);
}

#[test]
fn table6_power_matches_paper_within_a_watt() {
    let power = OrinNx::new().power;
    for (gpu, mem, paper_w) in [
        (918u32, 3199u32, 23.6),
        (918, 2133, 21.3),
        (510, 3199, 15.7),
        (510, 2133, 13.6),
        (510, 665, 11.5),
    ] {
        let w = power.power_w(&ClockConfig::new(gpu, mem), 1.0, 1.0);
        assert!(
            (w - paper_w).abs() < 1.0,
            "({gpu},{mem}): {w:.1} vs {paper_w}"
        );
    }
}

// ------------------------------------------------------- Table 7 / Fig. 8

fn orin_run(clocks: ClockConfig) -> (f64, f64) {
    let platform = PlatformId::OrinNx.spec().with_clocks(clocks);
    let r = profile_model(
        &ModelId::EfficientNetV2T.build(128),
        &platform,
        BackendFlavor::TrtLike,
        &SessionConfig::new(DType::F16),
        MetricMode::Predicted,
    )
    .unwrap();
    let power = OrinNx::new().power.power_w(&clocks, r.util_gpu, r.util_mem);
    (r.total_latency_ms, power)
}

#[test]
fn table7_orderings_hold() {
    let cc = |gpu, mem| ClockConfig::new(gpu, mem).with_tpc_mask(240);
    let (lat_maxn, _) = orin_run(JetsonPowerProfile::MaxN.clocks());
    let (lat_stock15, p_stock15) = orin_run(JetsonPowerProfile::Stock15W.clocks());
    let (lat_opt, p_opt) = orin_run(cc(612, 2133));
    let (lat_665, _) = orin_run(cc(612, 665));
    let (lat_3199, p_3199) = orin_run(cc(612, 3199));

    // MAXN is fastest; the stock 15W profile (TPC-gated) is slower than the
    // tuned 612/2133 at comparable power — the paper's headline
    assert!(lat_maxn < lat_opt);
    assert!(lat_opt < lat_stock15, "{lat_opt} vs stock {lat_stock15}");
    assert!(p_opt < 15.0, "tuned profile within budget: {p_opt}");
    assert!(p_stock15 < 15.0);
    // memory clock: 2133 costs little vs 3199; 665 costs a lot (Fig. 8)
    assert!(lat_opt / lat_3199 < 1.15);
    assert!(lat_665 / lat_opt > 1.5);
    assert!(p_3199 > p_opt);
}

#[test]
fn budget_search_selects_612_mhz_like_the_paper() {
    let orin = OrinNx::new();
    let found = orin.search_gpu_clock_under_budget(2133, 15.0, |clocks| {
        let platform = PlatformId::OrinNx.spec().with_clocks(clocks);
        let r = profile_model(
            &ModelId::EfficientNetV2T.build(128),
            &platform,
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
            MetricMode::Predicted,
        )
        .unwrap();
        (r.util_gpu, r.util_mem)
    });
    assert_eq!(found, Some(612));
}

// ------------------------------------------------------------ §4.3 claims

#[test]
fn fig4_most_models_stay_under_half_peak_on_a100() {
    let peak_gflops = PlatformId::A100.spec().peak_flops(DType::F16, true) / 1e9;
    let mut above_half = 0;
    let mut total = 0;
    for model in [
        ModelId::ResNet50,
        ModelId::MobileNetV2x10,
        ModelId::ShuffleNetV2x10,
        ModelId::EfficientNetB0,
        ModelId::SwinTiny,
        ModelId::ViTBase,
        ModelId::MlpMixerB16,
        ModelId::DistilBertBase,
    ] {
        let r = predicted(model, 128, PlatformId::A100);
        total += 1;
        if r.achieved_gflops() > 0.5 * peak_gflops {
            above_half += 1;
        }
    }
    assert!(above_half >= 1, "some model exceeds half peak");
    assert!(
        above_half <= total / 2,
        "only a small number exceed half peak"
    );
}

#[test]
fn npu_runs_only_a_small_portion_of_models_far_from_peak() {
    let npu = PlatformId::Npu3720.spec();
    let cfg = SessionConfig::new(DType::F16);
    let mut ok = 0;
    for model in ModelId::ALL {
        let g = model.build(1);
        if let Ok(r) = profile_model(&g, &npu, BackendFlavor::OvLike, &cfg, MetricMode::Predicted) {
            ok += 1;
            // "performance significantly deviated from its theoretical value"
            assert!(
                r.achieved_gflops() < 0.4 * npu.peak_flops(DType::F16, true) / 1e9,
                "{model:?}"
            );
        }
    }
    assert!(
        (4..=10).contains(&ok),
        "only a small portion compiles: {ok}"
    );
}

#[test]
fn orin_roughly_doubles_xavier() {
    let xavier = predicted(ModelId::ResNet50, 16, PlatformId::XavierNx);
    let orin = predicted(ModelId::ResNet50, 16, PlatformId::OrinNx);
    let ratio = xavier.total_latency_ms / orin.total_latency_ms;
    assert!((1.5..3.5).contains(&ratio), "Orin/Xavier speedup {ratio}");
}
