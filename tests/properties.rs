//! Property-based tests (proptest) over randomly generated CNN-ish graphs:
//! cost-model invariants (Eq. 1 linearity, non-negativity), fusion and
//! mapping partition properties, staged-vs-monolithic pipeline equivalence,
//! and serialization round-trips.

use proof::core::{
    map_layers, prepare_stages, profile_model, run_metric_stages, AnalyzeRepr, MetricMode,
    OptimizedRepr,
};
use proof::hw::PlatformId;
use proof::ir::{DType, Graph, GraphBuilder, TensorId};
use proof::runtime::{compile, fusion, BackendFlavor, SessionConfig};
use proptest::prelude::*;

/// One randomly chosen layer in a generated chain model.
#[derive(Debug, Clone)]
enum LayerSpec {
    Conv {
        cout_mult: u64,
        kernel: u64,
        stride: u64,
        depthwise: bool,
    },
    Relu,
    Silu,
    Clip,
    Residual, // conv + add(skip) + relu
    MaxPool,
    ShuffleLike, // reshape + transpose + reshape
    SplitConcat,
    Gelu,
    LayerNormLike, // flatten + decomposed LN over trailing dim
}

fn layer_strategy() -> impl Strategy<Value = LayerSpec> {
    prop_oneof![
        (
            1u64..=2,
            prop_oneof![Just(1u64), Just(3u64)],
            1u64..=2,
            any::<bool>()
        )
            .prop_map(|(cout_mult, kernel, stride, depthwise)| LayerSpec::Conv {
                cout_mult,
                kernel,
                stride,
                depthwise
            }),
        Just(LayerSpec::Relu),
        Just(LayerSpec::Silu),
        Just(LayerSpec::Clip),
        Just(LayerSpec::Residual),
        Just(LayerSpec::MaxPool),
        Just(LayerSpec::ShuffleLike),
        Just(LayerSpec::SplitConcat),
        Just(LayerSpec::Gelu),
        Just(LayerSpec::LayerNormLike),
    ]
}

/// Build a valid model from layer specs (specs that don't fit the current
/// shape are skipped, so every generated case is a well-formed graph).
fn build_model(batch: u64, channels: u64, specs: &[LayerSpec]) -> Graph {
    let mut b = GraphBuilder::new("prop-model");
    let x = b.input("input", &[batch, channels, 16, 16], DType::F32);
    let mut y: TensorId = x;
    for (i, spec) in specs.iter().enumerate() {
        let c = b.channels(y);
        let h = b.shape(y).dims()[2];
        match spec {
            LayerSpec::Conv {
                cout_mult,
                kernel,
                stride,
                depthwise,
            } => {
                if h < *stride * 2 || (*kernel == 3 && h < 3) {
                    continue;
                }
                let (cout, groups) = if *depthwise {
                    (c, c)
                } else {
                    (c * cout_mult, 1)
                };
                y = b.conv(
                    &format!("conv{i}"),
                    y,
                    cout,
                    *kernel,
                    *stride,
                    kernel / 2,
                    groups,
                    true,
                );
            }
            LayerSpec::Relu => y = b.relu(&format!("relu{i}"), y),
            LayerSpec::Silu => y = b.silu(&format!("silu{i}"), y),
            LayerSpec::Clip => y = b.relu6(&format!("clip{i}"), y),
            LayerSpec::Residual => {
                let branch = b.conv(&format!("res{i}.conv"), y, c, 3, 1, 1, 1, true);
                let s = b.add(&format!("res{i}.add"), y, branch);
                y = b.relu(&format!("res{i}.relu"), s);
            }
            LayerSpec::MaxPool => {
                if h >= 4 {
                    y = b.maxpool(&format!("pool{i}"), y, 2, 2, 0);
                }
            }
            LayerSpec::ShuffleLike => {
                if c.is_multiple_of(2) {
                    y = proof::models::blocks::channel_shuffle(&mut b, &format!("shuf{i}"), y, 2);
                }
            }
            LayerSpec::SplitConcat => {
                if c.is_multiple_of(2) {
                    let (l, r) = b.split2(&format!("split{i}"), y, 1);
                    y = b.concat(&format!("cat{i}"), &[l, r], 1);
                }
            }
            LayerSpec::Gelu => y = b.gelu(&format!("gelu{i}"), y),
            LayerSpec::LayerNormLike => {
                y = b.layer_norm_decomposed(&format!("ln{i}"), y);
            }
        }
    }
    b.output(y);
    b.finish()
}

fn model_strategy() -> impl Strategy<Value = (u64, Graph)> {
    (
        1u64..=4,
        prop_oneof![Just(4u64), Just(6u64), Just(8u64)],
        prop::collection::vec(layer_strategy(), 1..12),
    )
        .prop_map(|(batch, channels, specs)| (batch, build_model(batch, channels, &specs)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated graphs always validate and serialize round-trip.
    #[test]
    fn generated_graphs_validate_and_roundtrip((_b, g) in model_strategy()) {
        g.validate().unwrap();
        let restored = Graph::from_json(&g.to_json()).unwrap();
        prop_assert_eq!(g, restored);
    }

    /// Cost estimates are finite/non-negative and fp16 halves float traffic.
    #[test]
    fn cost_model_basic_invariants((_b, g) in model_strategy()) {
        let a32 = AnalyzeRepr::new(&g, DType::F32).total();
        let a16 = AnalyzeRepr::new(&g, DType::F16).total();
        prop_assert_eq!(a32.flops, a16.flops);
        prop_assert!(a16.memory_bytes() <= a32.memory_bytes());
        prop_assert!(a16.memory_bytes() * 2 >= a32.memory_bytes());
    }

    /// Eq. 1: activation traffic and FLOP scale linearly with batch,
    /// weights don't.
    #[test]
    fn eq1_batch_linearity(specs in prop::collection::vec(layer_strategy(), 1..10)) {
        let g1 = build_model(1, 8, &specs);
        let g3 = build_model(3, 8, &specs);
        let a1 = AnalyzeRepr::new(&g1, DType::F32).total();
        let a3 = AnalyzeRepr::new(&g3, DType::F32).total();
        prop_assert_eq!(3 * a1.flops, a3.flops);
        prop_assert_eq!(3 * a1.input_bytes, a3.input_bytes);
        prop_assert_eq!(3 * a1.output_bytes, a3.output_bytes);
        prop_assert_eq!(a1.weight_bytes, a3.weight_bytes);
    }

    /// Fusion covers every node exactly once under every policy, preserves
    /// total FLOP, and never increases predicted DRAM traffic.
    #[test]
    fn fusion_is_a_partition_preserving_flops((_b, g) in model_strategy()) {
        for policy in [
            fusion::FusionPolicy::trt(),
            fusion::FusionPolicy::ort(),
            fusion::FusionPolicy::ov(),
            fusion::FusionPolicy::none(),
        ] {
            let groups = fusion::fuse(&g, &policy);
            let mut seen = vec![false; g.nodes.len()];
            for grp in &groups {
                for &m in &grp.members {
                    prop_assert!(!seen[m as usize], "node in two groups");
                    seen[m as usize] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "uncovered node");

            // analysis-side: fusing those members keeps FLOP, shrinks memory
            let analysis = AnalyzeRepr::new(&g, DType::F16);
            let unfused_total = analysis.total();
            let mut repr = OptimizedRepr::new(analysis);
            for (i, grp) in groups.iter().enumerate() {
                if grp.members.len() > 1 {
                    repr.set_fused_op(&format!("g{i}"), &grp.members).unwrap();
                }
            }
            let fused_total = repr.total_cost();
            prop_assert_eq!(fused_total.flops, unfused_total.flops);
            prop_assert!(fused_total.memory_bytes() <= unfused_total.memory_bytes());
        }
    }

    /// The full pipeline maps every backend layer and covers every node,
    /// and mapping-derived membership equals the runtime's ground truth
    /// (modulo eliminated view ops).
    #[test]
    fn mapping_partition_on_random_graphs((_b, g) in model_strategy()) {
        let platform = PlatformId::A100.spec();
        let cfg = SessionConfig::new(DType::F16);
        for flavor in [BackendFlavor::TrtLike, BackendFlavor::OrtLike, BackendFlavor::OvLike] {
            let compiled = compile(&g, flavor, &platform, &cfg).unwrap();
            let mapping = map_layers(
                OptimizedRepr::new(AnalyzeRepr::new(&g, DType::F16)),
                &compiled.builtin_profile(),
                flavor,
            );
            prop_assert!(mapping.unresolved.is_empty(), "{:?}: {:?}", flavor, mapping.unresolved);
            prop_assert!(mapping.coverage() > 0.99, "{:?}: {}", flavor, mapping.coverage());
            // latency conservation: mapped layers account for the profile
            let profile_sum: f64 = compiled.builtin_profile().iter().map(|l| l.avg_latency_us).sum();
            let mapped_sum: f64 = mapping.layers.iter().map(|l| l.avg_latency_us).sum();
            prop_assert!((profile_sum - mapped_sum).abs() < 1e-6);
        }
    }

    /// The staged pipeline with prefix reuse (both metric modes off one
    /// [`prepare_stages`] call) is byte-identical — via the canonical JSON —
    /// to a fresh monolithic [`profile_model`] run, for random models,
    /// batch sizes, and dtypes.
    #[test]
    fn staged_pipeline_with_reuse_matches_monolithic(
        (_b, g) in model_strategy(),
        dtype in prop_oneof![Just(DType::F16), Just(DType::F32)],
    ) {
        let platform = PlatformId::A100.spec();
        let cfg = SessionConfig::new(dtype);
        let flavor = BackendFlavor::TrtLike;
        let prep = prepare_stages(&g, &platform, flavor, &cfg).unwrap();
        for mode in [MetricMode::Predicted, MetricMode::Measured] {
            let staged = run_metric_stages(&prep, mode).unwrap();
            let fresh = profile_model(&g, &platform, flavor, &cfg, mode).unwrap();
            prop_assert_eq!(&staged, &fresh);
            prop_assert_eq!(staged.to_json(), fresh.to_json());
        }
    }

    /// Simulation is deterministic for a fixed seed and monotone in batch.
    #[test]
    fn latency_is_deterministic_and_batch_monotone(specs in prop::collection::vec(layer_strategy(), 1..8)) {
        let platform = PlatformId::A100.spec();
        let cfg = SessionConfig::new(DType::F16);
        let g1 = build_model(1, 8, &specs);
        let g4 = build_model(4, 8, &specs);
        let a = compile(&g1, BackendFlavor::TrtLike, &platform, &cfg).unwrap();
        let b_ = compile(&g1, BackendFlavor::TrtLike, &platform, &cfg).unwrap();
        prop_assert_eq!(a.end_to_end_latency_ms(), b_.end_to_end_latency_ms());
        let big = compile(&g4, BackendFlavor::TrtLike, &platform, &cfg).unwrap();
        prop_assert!(big.end_to_end_latency_ms() >= a.end_to_end_latency_ms() * 0.999);
    }
}
