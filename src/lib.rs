//! PRoof workspace facade: re-exports the public API of every crate so
//! examples and downstream users can depend on a single crate.
//!
//! ```
//! use proof::core::{profile_model, MetricMode};
//! use proof::hw::PlatformId;
//! use proof::ir::DType;
//! use proof::models::ModelId;
//! use proof::runtime::{BackendFlavor, SessionConfig};
//!
//! let graph = ModelId::ResNet50.build(8);
//! let report = profile_model(
//!     &graph,
//!     &PlatformId::A100.spec(),
//!     BackendFlavor::TrtLike,
//!     &SessionConfig::new(DType::F16),
//!     MetricMode::Predicted,
//! )
//! .unwrap();
//! assert!(report.total_latency_ms > 0.0);
//! assert_eq!(report.unresolved_layers, 0);
//! ```
pub use proof_core as core;
pub use proof_counters as counters;
pub use proof_fleet as fleet;
pub use proof_hw as hw;
pub use proof_ir as ir;
pub use proof_models as models;
pub use proof_obs as obs;
pub use proof_runtime as runtime;
pub use proof_serve as serve;
pub use proof_store as store;
