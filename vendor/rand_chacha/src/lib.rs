//! Offline stand-in for `rand_chacha`, exposing [`ChaCha8Rng`].
//!
//! This is a genuine ChaCha8 keystream generator (RFC 8439 quarter-round,
//! 8 rounds) — deterministic for a fixed seed, which is all the simulators
//! rely on. The exact stream differs from upstream `rand_chacha` (seed
//! expansion is simpler), so regenerated noise values are internally
//! reproducible but not byte-identical to the real crate.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 16-word ChaCha state: constants, 8 key words, counter, 3 nonce words.
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    cursor: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, (&work, &init)) in self.block.iter_mut().zip(w.iter().zip(self.state.iter())) {
            *out = work.wrapping_add(init);
        }
        self.state[12] = self.state[12].wrapping_add(1); // block counter
        self.cursor = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    /// Expand a 64-bit seed into the 256-bit key via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // counter and nonce start at zero
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // mean of 1000 uniform draws is near 0.5
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }
}
