//! Offline stand-in for the small `rayon` surface this workspace uses:
//! `slice.par_iter().filter(..).map(..).collect()/sum()/for_each()`.
//!
//! Unlike rayon's work-stealing pool, this implementation partitions the
//! input slice into contiguous chunks and runs one scoped `std::thread` per
//! chunk (bounded by `std::thread::available_parallelism`), preserving input
//! order in collected output. On a single-core host it degrades to the
//! sequential path with no thread overhead.

pub mod prelude {
    pub use crate::{FromParallel, IntoParallelRefIterator, ParIter};
}

use std::marker::PhantomData;

/// `.par_iter()` entry point for slices and anything deref-ing to one.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    #[allow(clippy::type_complexity)]
    fn par_iter(
        &'a self,
    ) -> ParIter<'a, Self::Item, &'a Self::Item, fn(&'a Self::Item) -> Option<&'a Self::Item>>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T, &'a T, fn(&'a T) -> Option<&'a T>> {
        ParIter {
            data: self,
            f: Some,
            _marker: PhantomData,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T, &'a T, fn(&'a T) -> Option<&'a T>> {
        self.as_slice().par_iter()
    }
}

/// A lazy element-wise pipeline over a slice: each source element maps to
/// `Option<I>` (`None` = filtered out).
pub struct ParIter<'a, T, I, F> {
    data: &'a [T],
    f: F,
    _marker: PhantomData<fn() -> I>,
}

impl<'a, T, I, F> ParIter<'a, T, I, F>
where
    T: Sync,
    I: Send,
    F: Fn(&'a T) -> Option<I> + Sync,
{
    pub fn map<O: Send>(
        self,
        g: impl Fn(I) -> O + Sync,
    ) -> ParIter<'a, T, O, impl Fn(&'a T) -> Option<O> + Sync> {
        let f = self.f;
        ParIter {
            data: self.data,
            f: move |t| f(t).map(&g),
            _marker: PhantomData,
        }
    }

    pub fn filter(
        self,
        pred: impl Fn(&I) -> bool + Sync,
    ) -> ParIter<'a, T, I, impl Fn(&'a T) -> Option<I> + Sync> {
        let f = self.f;
        ParIter {
            data: self.data,
            f: move |t| f(t).filter(|i| pred(i)),
            _marker: PhantomData,
        }
    }

    /// Evaluate the pipeline, preserving input order.
    fn run(self) -> Vec<I> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(self.data.len().max(1));
        if threads <= 1 || self.data.len() <= 1 {
            return self.data.iter().filter_map(&self.f).collect();
        }
        let chunk = self.data.len().div_ceil(threads);
        let f = &self.f;
        let mut chunks: Vec<Vec<I>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .data
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().filter_map(f).collect::<Vec<I>>()))
                .collect();
            chunks = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });
        chunks.into_iter().flatten().collect()
    }

    pub fn collect<C: FromParallel<I>>(self) -> C {
        C::from_parallel(self.run())
    }

    pub fn for_each(self, g: impl Fn(I) + Sync) {
        for item in self.run() {
            g(item);
        }
    }

    pub fn count(self) -> usize {
        self.run().len()
    }

    pub fn sum<S: std::iter::Sum<I>>(self) -> S {
        self.run().into_iter().sum()
    }

    pub fn reduce(self, identity: impl Fn() -> I, op: impl Fn(I, I) -> I + Sync) -> I {
        self.run().into_iter().fold(identity(), op)
    }
}

/// Collect targets for [`ParIter::collect`] (mirrors rayon's
/// `FromParallelIterator` for the shapes used here).
pub trait FromParallel<I>: Sized {
    fn from_parallel(items: Vec<I>) -> Self;
}

impl<I> FromParallel<I> for Vec<I> {
    fn from_parallel(items: Vec<I>) -> Self {
        items
    }
}

impl<X, E> FromParallel<Result<X, E>> for Result<Vec<X>, E> {
    fn from_parallel(items: Vec<Result<X, E>>) -> Self {
        items.into_iter().collect()
    }
}

impl<I> FromParallel<I> for String
where
    String: FromIterator<I>,
{
    fn from_parallel(items: Vec<I>) -> Self {
        items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_filter_collect_preserves_order() {
        let data: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = data
            .par_iter()
            .filter(|&&x| x % 2 == 0)
            .map(|&x| x * 3)
            .collect();
        let expect: Vec<u64> = (0..1000).filter(|x| x % 2 == 0).map(|x| x * 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn result_collect_short_circuits_to_err() {
        let data = vec![1u64, 2, 3];
        let out: Result<Vec<u64>, String> = data
            .par_iter()
            .map(|&x| {
                if x == 2 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(out, Err("boom".to_string()));
    }

    #[test]
    fn sum_matches_sequential() {
        let data: Vec<u64> = (1..=100).collect();
        let s: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(s, 5050);
    }
}
