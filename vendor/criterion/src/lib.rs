//! Offline stand-in for the `criterion` surface this workspace uses.
//!
//! Provides `Criterion`, `benchmark_group` / `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark body is
//! timed with a simple warmup + fixed-iteration measurement loop and the
//! mean wall-clock time per iteration is printed — enough to keep
//! `[[bench]]` targets with `harness = false` compiling and runnable
//! without the real statistics engine.

use std::fmt::{self, Display};
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warmup to populate caches / JIT-less but still settles frequency
        for _ in 0..self.iters.min(3) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters: 10,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!("bench {label:<40} {:>12.3} us/iter", per_iter * 1e6);
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) {
        run_bench(&format!("{}/{}", self.name, id), f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        run_bench(&format!("{}/{}", self.name, id), |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_bench(&id.to_string(), f);
        self
    }

    /// Accepted for API compatibility; the stand-in uses a fixed iteration
    /// count instead of statistical sampling.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $group;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
