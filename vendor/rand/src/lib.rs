//! Offline API-compatible stand-in for the `rand` trait surface this
//! workspace uses: `RngCore`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen::<T>()` / `Rng::gen_range` for primitive types.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform integer in `[low, high)` (modulo bias is acceptable here).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
