//! Offline API-compatible stand-in for `serde_json`, layered on the
//! vendored `serde` crate's [`Value`] data model: a hand-written JSON text
//! parser plus compact/pretty printers.
//!
//! Output conventions follow real serde_json: objects print with sorted
//! keys (`BTreeMap` backing), pretty output uses 2-space indentation, and
//! non-finite floats serialize as `null`.

mod parse;

pub use parse::from_slice_value;
pub use serde::value::{Map, Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// Parse or conversion failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub(crate) fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to the in-memory JSON data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Deserialize out of the in-memory JSON data model.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(Error::from)
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::ser::to_compact_string(&value.to_value()))
}

/// Pretty JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::ser::to_pretty_string(&value.to_value()))
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse::parse_value(s)?;
    from_value(&v)
}

/// Parse JSON bytes into any `Deserialize` type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Build a [`Value`] from inline JSON-ish syntax. Supports the common
/// literal forms; expressions interpolate via `Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}
