//! Recursive-descent JSON parser.

use crate::Error;
use serde::value::{Map, Number, Value};

const MAX_DEPTH: usize = 192;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document (must consume all non-whitespace input).
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

/// Parse JSON bytes directly into a [`Value`].
pub fn from_slice_value(bytes: &[u8]) -> Result<Value, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    parse_value(s)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        // Report a 1-based line:column like serde_json does.
        let mut line = 1usize;
        let mut col = 1usize;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::new(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion depth exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue; // hex4 advanced pos past the escape
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 encoded char
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}
