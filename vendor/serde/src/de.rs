//! Deserialization: [`Value`] -> Rust values.

use crate::value::{Map, Value};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// Deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion out of the JSON data model. The vendored replacement for
/// `serde::Deserialize`; derive with `#[derive(Deserialize)]`.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Look up a struct field; a missing key deserializes like `null` so that
/// `Option` fields tolerate omission.
pub fn field<T: Deserialize>(map: &Map<String, Value>, name: &str) -> Result<T, DeError> {
    match map.get(name) {
        Some(v) => T::from_value(v).map_err(|e| DeError::custom(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::custom(format!("missing field `{name}`"))),
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, got {v}")))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v}")))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(())
        } else {
            Err(DeError::custom("expected null"))
        }
    }
}

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64()
                    .ok_or_else(|| DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {}"), v)))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    concat!("value {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}
macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64()
                    .ok_or_else(|| DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {}"), v)))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    concat!("value {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);
de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // serde_json round-trips non-finite floats through null.
        if v.is_null() {
            return Ok(f64::NAN);
        }
        v.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, got {v}")))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v}")))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! de_tuple {
    ($(($len:literal: $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array()
                    .ok_or_else(|| DeError::custom(format!("expected array, got {v}")))?;
                if arr.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected {}-tuple, got array of length {}", $len, arr.len())));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1: 0 A)
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
    (5: 0 A, 1 B, 2 C, 3 D, 4 E)
    (6: 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Map keys parse back from their JSON string form.
pub trait FromKey: Sized {
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl FromKey for String {
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}
macro_rules! from_key_int {
    ($($t:ty),*) => {$(
        impl FromKey for $t {
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::custom(format!(
                    concat!("invalid ", stringify!($t), " map key `{}`"), key)))
            }
        }
    )*};
}
from_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: FromKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, got {v}")))?;
        obj.iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: FromKey + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, got {v}")))?;
        obj.iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}
