//! Offline API-compatible stand-in for [serde](https://serde.rs).
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the small serde surface it actually uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums (no field attributes), driven
//! through a JSON-like [`Value`] data model instead of serde's
//! serializer/deserializer visitors. `serde_json` (also vendored) layers
//! text parsing and printing on top of [`Value`].
//!
//! Semantics mirror serde + serde_json defaults where they matter:
//! - struct -> JSON object keyed by field name (BTreeMap, so key order is
//!   sorted and deterministic, matching serde_json's default `Map`),
//! - newtype struct -> the inner value, transparently,
//! - unit enum variant -> `"VariantName"`,
//! - data-carrying variant -> `{"VariantName": <payload>}` (externally
//!   tagged),
//! - `Option::None` -> `null`, non-finite floats -> `null`.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{DeError, Deserialize};
pub use ser::Serialize;
pub use value::{Map, Number, Value};

// Derive macros; same names as the traits, in the macro namespace.
pub use serde_derive::{Deserialize, Serialize};
