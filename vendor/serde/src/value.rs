//! The JSON-like data model every `Serialize`/`Deserialize` impl goes
//! through. `serde_json` re-exports [`Value`] so call sites can keep writing
//! `serde_json::Value`.

use std::collections::BTreeMap;
use std::fmt;

/// Object map type. A `BTreeMap` keeps keys sorted, which matches
/// serde_json's default (non-`preserve_order`) behaviour and makes the
/// serialized text canonical — important for content-addressed caching.
pub type Map<K, V> = BTreeMap<K, V>;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::F(a), Number::F(b)) => a == b,
            (Number::F(_), _) | (_, Number::F(_)) => self.as_f64() == other.as_f64(),
            _ => match (self.as_i64(), other.as_i64(), self.as_u64(), other.as_u64()) {
                (Some(a), Some(b), _, _) => a == b,
                (_, _, Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member by key; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Array element by index.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(idx))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::U(v))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Number(Number::U(u64::from(v)))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(Number::U(v as u64))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Number(Number::I(v))
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Number(Number::I(i64::from(v)))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Like serde_json: indexing a missing key or non-object yields `Null`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(i64::from(*other))
    }
}

impl PartialEq<u32> for Value {
    fn eq(&self, other: &u32) -> bool {
        self.as_u64() == Some(u64::from(*other))
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl fmt::Display for Value {
    /// Compact JSON text (same shape as `serde_json::to_string`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::ser::to_compact_string(self))
    }
}

/// Fresh empty object map (used by derive-generated code).
pub fn new_object() -> Map<String, Value> {
    Map::new()
}

/// `{"tag": payload}` — the externally-tagged enum-variant encoding
/// (used by derive-generated code).
pub fn tagged(tag: &str, payload: Value) -> Value {
    let mut m = new_object();
    m.insert(tag.to_string(), payload);
    Value::Object(m)
}
