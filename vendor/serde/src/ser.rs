//! Serialization: Rust values -> [`Value`] -> JSON text.

use crate::value::{Number, Value};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Conversion into the JSON data model. The vendored replacement for
/// `serde::Serialize`; derive with `#[derive(Serialize)]`.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U(*self as u64)) }
        }
    )*};
}
macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::I(*self as i64)) }
        }
    )*};
}
macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::F(*self as f64)) }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);
ser_float!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Map keys must render as JSON strings. Strings pass through; integers use
/// their decimal form (what serde_json does for integer-keyed maps).
pub trait MapKey {
    fn to_key(&self) -> String;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}
impl MapKey for &str {
    fn to_key(&self) -> String {
        self.to_string()
    }
}
macro_rules! key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
        }
    )*};
}
key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_into(out: &mut String, n: &Number) {
    match *n {
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        // serde_json writes non-finite floats as null; `{:?}` keeps the
        // shortest round-trippable decimal form and always includes ".0"
        // for integral floats, matching serde_json's output.
        Number::F(v) if v.is_finite() => {
            let _ = write!(out, "{v:?}");
        }
        Number::F(_) => out.push_str("null"),
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => number_into(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..indent + STEP {
                    out.push(' ');
                }
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push(' ');
            }
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..indent + STEP {
                    out.push(' ');
                }
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + STEP);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push(' ');
            }
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Compact JSON text of a [`Value`].
pub fn to_compact_string(v: &Value) -> String {
    let mut out = String::new();
    write_compact(&mut out, v);
    out
}

/// Pretty JSON text (2-space indent, serde_json style).
pub fn to_pretty_string(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(&mut out, v, 0);
    out
}
