//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses — no `syn`/`quote` (unavailable offline), just
//! direct `proc_macro::TokenStream` walking plus string codegen:
//!
//! - structs with named fields          -> JSON objects
//! - newtype / tuple structs            -> inner value / JSON array
//! - unit structs                       -> `null`
//! - enums: unit variants               -> `"Variant"`
//! - enums: newtype/tuple/struct variants -> `{"Variant": ...}` (externally
//!   tagged, matching real serde's default representation)
//!
//! Generics and `#[serde(...)]` field attributes are intentionally
//! unsupported and produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// The parsed skeleton of the type being derived.
enum Shape {
    Unit,
    /// Tuple struct with N fields.
    Tuple(usize),
    /// Named fields in declaration order.
    Named(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = match parse(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&name, &shape),
        Mode::Deserialize => gen_deserialize(&name, &shape),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Preamble: outer attributes and visibility before `struct`/`enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // Optional restriction: pub(crate), pub(in ...)
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                i += 1;
                break id.to_string();
            }
            Some(tt) => return Err(format!("unexpected token `{tt}` before struct/enum")),
            None => return Err("no struct/enum found".to_string()),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing type name".to_string()),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }

    if kind == "enum" {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            _ => return Err(format!("enum `{name}` has no brace body")),
        };
        return Ok((name, Shape::Enum(parse_variants(body)?)));
    }

    match tokens.get(i) {
        // `struct Name;`
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::Unit)),
        // `struct Name(T, U);`
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = count_tuple_fields(g.stream());
            Ok((name, Shape::Tuple(n)))
        }
        // `struct Name { .. }`
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok((name, Shape::Named(parse_named_fields(g.stream())?)))
        }
        other => Err(format!("unexpected struct body for `{name}`: {other:?}")),
    }
}

/// Count comma-separated items at angle-bracket depth 0.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        fields += 1;
    }
    fields
}

/// Extract field names from a named-field body, in declaration order.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        // attributes
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        // visibility
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let fname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{fname}`, got {other:?}")),
        }
        // skip the type: consume until a comma at angle depth 0
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(fname);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        let vname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        // skip an optional `= discriminant` and the trailing comma
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name: vname, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => {
            let mut s = String::from("{ let mut m = ::serde::value::new_object();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m) }");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::value::tagged({vn:?}, ::serde::Serialize::to_value(x0)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::value::tagged({vn:?}, ::serde::Value::Array(vec![{}])),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binders = fields.join(", ");
                        let mut inner = String::from(
                            "{ let mut m = ::serde::value::new_object();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "m.insert({f:?}.to_string(), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        inner.push_str("::serde::Value::Object(m) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binders} }} => ::serde::value::tagged({vn:?}, {inner}),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!(
            "if v.is_null() {{ Ok({name}) }} else {{ \
             Err(::serde::DeError::custom(\"expected null for unit struct {name}\")) }}"
        ),
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "{{ let arr = v.as_array().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if arr.len() != {n} {{ return Err(::serde::DeError::custom(\
                 format!(\"expected {n} elements for {name}, got {{}}\", arr.len()))); }}\n\
                 Ok({name}({items})) }}",
                items = items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(obj, {f:?})?"))
                .collect();
            format!(
                "{{ let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(format!(\"expected object for {name}, got {{v}}\")))?;\n\
                 Ok({name} {{ {items} }}) }}",
                items = items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{ let arr = inner.as_array().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected array for variant {vn}\"))?;\n\
                             if arr.len() != {n} {{ return Err(::serde::DeError::custom(\
                             \"wrong tuple arity for variant {vn}\")); }}\n\
                             Ok({name}::{vn}({items})) }},\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de::field(obj, {f:?})?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{ let obj = inner.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected object for variant {vn}\"))?;\n\
                             Ok({name}::{vn} {{ {items} }}) }},\n",
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::DeError::custom(format!(\
                 \"unknown {name} variant `{{other}}`\"))),\n}},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = m.iter().next().unwrap();\n\
                 #[allow(unused_variables)] let inner = inner;\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => Err(::serde::DeError::custom(format!(\
                 \"unknown {name} variant `{{other}}`\"))),\n}}\n}},\n\
                 other => Err(::serde::DeError::custom(format!(\
                 \"expected {name} variant, got {{other}}\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
