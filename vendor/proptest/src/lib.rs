//! Offline stand-in for the `proptest` surface this workspace uses.
//!
//! Random-input property testing without shrinking: each `proptest!` test
//! draws deterministic pseudo-random inputs per case (seeded by case index,
//! so failures reproduce across runs), executes the body, and panics with
//! the offending input's `Debug` form on the first failure. Supported
//! surface: range / `Just` / `any` / tuple / `prop_oneof!` / `prop_map` /
//! `collection::vec` / `sample::select` strategies, `prop_assert*!`,
//! `prop_assume!`, and `ProptestConfig::with_cases`.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of proptest's `prelude::prop` module-alias: gives access to
    /// `prop::collection::vec`, `prop::sample::select`, ...
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// The `proptest! { ... }` item macro: expands each
/// `fn name(pat in strategy, ...) { body }` into a `#[test]`-able function
/// running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(10).saturating_add(100) {
                    panic!("proptest: too many rejected cases (prop_assume too strict?)");
                }
                let mut rng = $crate::test_runner::TestRng::for_case(attempts as u64);
                let value = $crate::strategy::Strategy::new_value(&strategy, &mut rng);
                let debug_repr = format!("{:?}", value);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        let ($($pat,)+) = value;
                        $body
                        Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "proptest case {} failed: {}\n  input: {}",
                        attempts, msg, debug_repr
                    ),
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (not a failure) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Strategy union: `prop_oneof![a, b, c]` picks one arm uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
