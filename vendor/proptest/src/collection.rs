//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// `vec(element_strategy, size)` — a `Vec` of random length within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
