//! Core strategy trait and combinators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values (no shrinking in the stand-in).
pub trait Strategy {
    type Value: Debug;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F, O>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy {
            inner: self,
            f,
            _marker: PhantomData,
        }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F, S>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy {
            inner: self,
            f,
            _marker: PhantomData,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`] / `prop_oneof!`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct MapStrategy<S, F, O> {
    inner: S,
    f: F,
    _marker: PhantomData<fn() -> O>,
}

impl<S, F, O> Strategy for MapStrategy<S, F, O>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// `strategy.prop_flat_map(f)`.
pub struct FlatMapStrategy<S, F, S2> {
    inner: S,
    f: F,
    _marker: PhantomData<fn() -> S2>,
}

impl<S, F, S2> Strategy for FlatMapStrategy<S, F, S2>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].new_value(rng)
    }
}

// ------------------------------------------------------------ numeric ranges

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        // closed upper bound: scale by the next-up factor so end is reachable
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo) * (1.0 + f64::EPSILON)
    }
}

// ------------------------------------------------------------------- any::<T>

/// Uniform over a type's whole domain (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// -------------------------------------------------------------------- tuples

macro_rules! tuple_strategies {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
