//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;

/// Uniformly select one element of a non-empty vector.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires a non-empty vector");
    Select { options }
}

pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].clone()
    }
}
