//! Deterministic RNG and per-test configuration for the mini proptest.

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Real proptest defaults to 256; the stand-in uses a smaller default so
    /// unoptimized `cargo test` stays fast while keeping useful coverage.
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Property violated; message describes the failing assertion.
    Fail(String),
    /// Input discarded by `prop_assume!`; does not count as a case.
    Reject(String),
}

/// xoshiro256** seeded via SplitMix64 — deterministic per case index so
/// failures reproduce without persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for the `case`-th attempt of a property (1-based).
    pub fn for_case(case: u64) -> Self {
        // fixed run seed; vary only by case index for reproducibility
        let mut sm = 0x8442_9C6A_5C6A_F3E1u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
