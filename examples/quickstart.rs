//! Quickstart: build a small custom model with the graph builder, profile
//! it on a simulated A100 under the TensorRT-like backend, and render a
//! layer-wise roofline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use proof::core::report::profile_summary;
use proof::core::{profile_model, render_roofline_svg, MetricMode, SvgOptions};
use proof::hw::PlatformId;
use proof::ir::{DType, GraphBuilder};
use proof::runtime::{BackendFlavor, SessionConfig};

fn main() {
    // 1. Describe a model (or load one with `Graph::from_json`).
    let mut b = GraphBuilder::new("quickstart-cnn");
    let x = b.input("input", &[32, 3, 64, 64], DType::F32);
    let mut y = b.conv("stem", x, 32, 3, 2, 1, 1, true);
    y = b.relu("stem_relu", y);
    for i in 0..4 {
        let c = b.channels(y);
        let branch = b.conv(&format!("block{i}.conv1"), y, c, 3, 1, 1, 1, true);
        let branch = b.relu(&format!("block{i}.relu1"), branch);
        let branch = b.conv(&format!("block{i}.conv2"), branch, c, 3, 1, 1, 1, true);
        let sum = b.add(&format!("block{i}.add"), y, branch);
        y = b.relu(&format!("block{i}.relu2"), sum);
    }
    y = b.global_avg_pool("gap", y);
    y = b.flatten("flatten", y, 1);
    y = b.linear("head", y, 10, true);
    b.output(y);
    let graph = b.finish();

    // 2. Pick a platform and profile (predicted mode: no counter tooling
    //    needed — the paper's portable path).
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    let report = profile_model(
        &graph,
        &platform,
        BackendFlavor::TrtLike,
        &cfg,
        MetricMode::Predicted,
    )
    .expect("profiling");

    // 3. Read the results: per-backend-layer latency, FLOP, traffic, and
    //    which original nodes each backend layer executes.
    println!("{}", profile_summary(&report, 10));
    for layer in report.layers.iter().take(3) {
        println!("{} <= {:?}", layer.name, layer.original_nodes);
    }

    // 4. Render the layer-wise roofline chart.
    let chart = report.layerwise_chart("quickstart-cnn on A100 (fp16)");
    std::fs::write(
        "quickstart_roofline.svg",
        render_roofline_svg(&chart, &SvgOptions::default()),
    )
    .expect("write svg");
    println!("\nwrote quickstart_roofline.svg");
}
