//! The paper's future-work direction (§5: "adaptation of PRoof to
//! distributed environments") implemented for pipeline-parallel inference:
//! partition the SD UNet across two GPUs, compare NVLink vs PCIe
//! interconnects, and inspect the per-stage rooflines.
//!
//! ```sh
//! cargo run --release --example pipeline_parallel
//! ```

use proof::core::{profile_model, profile_pipeline, Interconnect, MetricMode};
use proof::hw::PlatformId;
use proof::ir::DType;
use proof::models::ModelId;
use proof::runtime::{BackendFlavor, SessionConfig};

fn main() {
    let g = ModelId::StableDiffusionUnet.build(4);
    let a100 = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);

    let single = profile_model(
        &g,
        &a100,
        BackendFlavor::TrtLike,
        &cfg,
        MetricMode::Predicted,
    )
    .expect("single-device profile");
    println!(
        "single A100: {:.1} ms/step ({:.1} TFLOP/s)\n",
        single.total_latency_ms,
        single.achieved_gflops() / 1e3
    );

    for (name, link) in [
        ("NVLink", Interconnect::nvlink()),
        ("PCIe 4.0", Interconnect::pcie4()),
    ] {
        let pipe = profile_pipeline(
            &g,
            &[a100.clone(), a100.clone()],
            BackendFlavor::TrtLike,
            &cfg,
            link,
        )
        .expect("pipeline profile");
        println!("2x A100 over {name}:");
        for (i, s) in pipe.stages.iter().enumerate() {
            println!(
                "  stage {i} [{} .. {}] ({} nodes): {:.1} ms, {:.1} TFLOP/s, egress {:.1} MB (+{:.2} ms)",
                s.first_node,
                s.last_node,
                s.node_count,
                s.report.total_latency_ms,
                s.report.achieved_gflops() / 1e3,
                s.egress_bytes as f64 / 1e6,
                s.transfer_ms
            );
        }
        println!(
            "  steady-state: {:.1} ms/interval -> {:.2}x throughput vs one device; first sample {:.1} ms\n",
            pipe.bottleneck_ms,
            pipe.speedup_over(single.total_latency_ms),
            pipe.single_sample_ms
        );
        assert!(pipe.speedup_over(single.total_latency_ms) > 1.0);
    }
}
