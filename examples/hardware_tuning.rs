//! The paper's §4.6 case study as an API walkthrough: tune the Jetson Orin
//! NX's clocks to maximize EfficientNetV2-T throughput within a 15 W power
//! budget, using the layer-wise roofline to pick the memory clock and a
//! binary search for the GPU clock.
//!
//! ```sh
//! cargo run --release --example hardware_tuning
//! ```

use proof::core::{profile_model, MetricMode};
use proof::hw::{ClockConfig, JetsonPowerProfile, OrinNx, PlatformId};
use proof::ir::DType;
use proof::models::ModelId;
use proof::runtime::{BackendFlavor, SessionConfig};

fn run(clocks: ClockConfig) -> (f64, f64, f64) {
    let platform = PlatformId::OrinNx.spec().with_clocks(clocks);
    let report = profile_model(
        &ModelId::EfficientNetV2T.build(128),
        &platform,
        BackendFlavor::TrtLike,
        &SessionConfig::new(DType::F16),
        MetricMode::Predicted,
    )
    .expect("profile");
    (report.total_latency_ms, report.util_gpu, report.util_mem)
}

fn main() {
    let orin = OrinNx::new();
    let budget_w = 15.0;

    // Step 1: layer-wise analysis at max clocks — how many layers would a
    // lower memory clock actually hurt? (the paper's Figure 8 reasoning)
    let maxn = PlatformId::OrinNx.spec();
    let report = profile_model(
        &ModelId::EfficientNetV2T.build(128),
        &maxn,
        BackendFlavor::TrtLike,
        &SessionConfig::new(DType::F16),
        MetricMode::Predicted,
    )
    .unwrap();
    for mem_mhz in [2133u32, 665] {
        let bw = maxn
            .with_clocks(ClockConfig::new(918, mem_mhz))
            .achievable_bw()
            / 1e9;
        let affected = report
            .layers
            .iter()
            .filter(|l| l.achieved_gflops() > bw * l.intensity())
            .count();
        println!(
            "EMC {mem_mhz:>4} MHz ({bw:>5.1} GB/s): would slow {affected}/{} layers",
            report.layers.len()
        );
    }
    // 2133 MHz barely hurts; 665 MHz hurts most layers → choose 2133.
    let mem_mhz = 2133;

    // Step 2: binary-search the highest GPU clock under the budget.
    let gpu_mhz = orin
        .search_gpu_clock_under_budget(mem_mhz, budget_w, |clocks| {
            let (_, ug, um) = run(clocks);
            (ug, um)
        })
        .expect("some clock fits the budget");
    let chosen = ClockConfig::new(gpu_mhz, mem_mhz);
    let (latency, ug, um) = run(chosen);
    let power = orin.power.power_w(&chosen, ug, um);
    println!(
        "\nchosen: GPU {gpu_mhz} MHz / EMC {mem_mhz} MHz -> {latency:.1} ms at {power:.1} W \
         (paper: 612/2133 -> 320.1 ms at 14.7 W)"
    );

    // Step 3: compare against the stock profiles.
    for profile in [JetsonPowerProfile::Stock15W, JetsonPowerProfile::Stock25W] {
        let clocks = profile.clocks();
        let (lat, ug, um) = run(clocks);
        let p = orin.power.power_w(&clocks, ug, um);
        println!("{:<14} -> {lat:.1} ms at {p:.1} W", profile.label());
    }
    let (stock_lat, _, _) = run(JetsonPowerProfile::Stock15W.clocks());
    println!(
        "\nwithin the {budget_w} W budget, tuned clocks are {:.2}x faster than the stock \"15W\" profile",
        stock_lat / latency
    );
    assert!(latency < stock_lat);
    assert!(power <= budget_w);
}
