//! Profile one model under all three backend flavours and show what each
//! runtime's profiler reveals, how PRoof's per-backend mapping strategies
//! recover the layer↔node correspondence anyway, and how fusion
//! aggressiveness changes the backend-layer count and latency.
//!
//! ```sh
//! cargo run --release --example compare_backends
//! ```

use proof::core::{map_layers, AnalyzeRepr, OptimizedRepr};
use proof::hw::PlatformId;
use proof::ir::DType;
use proof::models::ModelId;
use proof::runtime::{compile, BackendFlavor, LayerHint, SessionConfig};

fn main() {
    let g = ModelId::ViTTiny.build(8);
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    println!(
        "model: {} ({} nodes)\nplatform: {}\n",
        g.name,
        g.node_count(),
        platform.name
    );

    for flavor in [
        BackendFlavor::TrtLike,
        BackendFlavor::OrtLike,
        BackendFlavor::OvLike,
    ] {
        let compiled = compile(&g, flavor, &platform, &cfg).expect("compile");
        let profile = compiled.builtin_profile();

        // what kind of hints does this runtime's profiler give?
        let mut opaque = 0;
        let mut named = 0;
        let mut primary_only = 0;
        let mut reorder = 0;
        for l in &profile {
            match l.hint {
                LayerHint::OpaqueIo { .. } => opaque += 1,
                LayerHint::NodeNames(_) | LayerHint::FusedNameString(_) => named += 1,
                LayerHint::PrimaryOp { .. } => primary_only += 1,
                LayerHint::Reorder { .. } => reorder += 1,
            }
        }

        // PRoof's mapping reconstructs membership from whatever is given
        let mapping = map_layers(
            OptimizedRepr::new(AnalyzeRepr::new(&g, cfg.precision)),
            &profile,
            flavor,
        );
        println!(
            "{:<9} {:>4} backend layers ({} named / {} opaque / {} primary-only / {} reorder) \
             -> mapping coverage {:>5.1}%, {:>7.3} ms end-to-end",
            flavor.name(),
            profile.len(),
            named,
            opaque,
            primary_only,
            reorder,
            100.0 * mapping.coverage(),
            compiled.end_to_end_latency_ms(),
        );
        if let Some(example) = profile
            .iter()
            .find(|l| matches!(l.hint, LayerHint::OpaqueIo { .. }))
        {
            let gid = mapping
                .layers
                .iter()
                .find(|m| m.backend_name == example.name)
                .and_then(|m| m.group)
                .expect("opaque layer mapped");
            println!(
                "          e.g. opaque {:?} resolved to {} original nodes via get_subgraph_ops_by_io",
                example.name,
                mapping.repr.group(gid).members.len()
            );
        }
    }
}
