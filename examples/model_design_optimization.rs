//! The paper's §4.5 case study as an API walkthrough: use PRoof's
//! layer-wise roofline to find that ShuffleNetV2's channel-shuffle
//! (`Transpose` + data-copy layers) dominates latency on a bandwidth-limited
//! datacenter GPU, then verify the shuffle-free redesign (paper Figure 7 /
//! Table 5) trades extra FLOP for less memory traffic and wins.
//!
//! ```sh
//! cargo run --release --example model_design_optimization
//! ```

use proof::core::roofline::LayerCategory;
use proof::core::{profile_model, MetricMode, ProfileReport};
use proof::hw::PlatformId;
use proof::ir::DType;
use proof::models::ModelId;
use proof::runtime::{BackendFlavor, SessionConfig};

fn profile(model: ModelId, batch: u64) -> ProfileReport {
    let platform = PlatformId::A100.spec();
    profile_model(
        &model.build(batch),
        &platform,
        BackendFlavor::TrtLike,
        &SessionConfig::new(DType::F16),
        MetricMode::Predicted,
    )
    .expect("profile")
}

fn shuffle_overhead_share(report: &ProfileReport) -> f64 {
    let shuffle_us: f64 = report
        .layers
        .iter()
        .filter(|l| {
            matches!(
                l.category,
                LayerCategory::Transpose | LayerCategory::DataCopy
            ) || l.is_reorder
        })
        .map(|l| l.latency_us)
        .sum();
    shuffle_us / (report.total_latency_ms * 1e3)
}

fn main() {
    let batch = 2048; // the paper's max-throughput batch

    // Step 1: end-to-end profile of the original model — low achieved
    // FLOP/s against the A100's 312 TFLOP/s peak.
    let original = profile(ModelId::ShuffleNetV2x10, batch);
    println!(
        "original : {:8.1} GFLOP/s ({:.2}% of fp16 peak), {:6.2} ms, {:5.1}% of time in shuffle/data-movement layers",
        original.achieved_gflops(),
        100.0 * original.achieved_gflops() / (312e3),
        original.total_latency_ms,
        100.0 * shuffle_overhead_share(&original),
    );

    // Step 2: the layer-wise view names the culprits — and because PRoof
    // maps backend layers back to model nodes, we can see *which design
    // construct* they came from (the `.shuffle` reshape/transpose chains).
    let mut worst: Vec<_> = original
        .layers
        .iter()
        .filter(|l| matches!(l.category, LayerCategory::Transpose))
        .collect();
    worst.sort_by(|a, b| b.latency_us.total_cmp(&a.latency_us));
    println!("\nslowest transpose layers and their model-design origin:");
    for l in worst.iter().take(3) {
        println!(
            "  {:6.1} us  {}  <-  {:?}",
            l.latency_us,
            l.name,
            l.original_nodes.first().map(String::as_str).unwrap_or("?")
        );
    }

    // Step 3: the redesigned model (wider point-wise convs, no shuffle,
    // explicit residual) — more FLOP, less traffic, faster end to end.
    let modified = profile(ModelId::ShuffleNetV2x10Mod, batch);
    println!(
        "\nmodified : {:8.1} GFLOP/s, {:6.2} ms, {:5.1}% shuffle/data-movement",
        modified.achieved_gflops(),
        modified.total_latency_ms,
        100.0 * shuffle_overhead_share(&modified),
    );
    println!(
        "\nspeedup at bs={batch}: {:.2}x (paper Table 5: 1.64x) with {:.1}% more FLOP",
        original.total_latency_ms / modified.total_latency_ms,
        100.0 * (modified.total_flops as f64 / original.total_flops as f64 - 1.0),
    );
    assert!(modified.total_latency_ms < original.total_latency_ms);
}
