#!/usr/bin/env bash
# Tier-1 gate for the proof workspace. Run from the repo root.
#
#   ./ci.sh          # format check, lints, release build, full test suite
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> proof profile --trace smoke test"
# capture first: grep -q on a pipe would close it early and break the CLI
trace_out="$(./target/release/proof profile --model mobilenetv2-0.5 --platform a100 --batch 1 --trace)"
grep -q "builtin_profile" <<<"$trace_out"

echo "CI OK"
