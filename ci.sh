#!/usr/bin/env bash
# Tier-1 gate for the proof workspace. Run from the repo root.
#
#   ./ci.sh          # format check, lints, release build, full test suite
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
# --workspace so the smokes below run a freshly-built ./target/release/proof
# (the bare root-package build would leave the proof-cli binary stale)
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> proof profile --trace smoke test"
# capture first: grep -q on a pipe would close it early and break the CLI
trace_out="$(./target/release/proof profile --model mobilenetv2-0.5 --platform a100 --batch 1 --trace)"
grep -q "builtin_profile" <<<"$trace_out"

echo "==> proof profile --trace-out smoke test (valid + byte-reproducible)"
./target/release/proof profile --model mobilenetv2-0.5 --platform a100 --batch 1 --seed 42 \
    --trace-out /tmp/proof_ci_trace_a.json >/dev/null
./target/release/proof profile --model mobilenetv2-0.5 --platform a100 --batch 1 --seed 42 \
    --trace-out /tmp/proof_ci_trace_b.json >/dev/null
cmp /tmp/proof_ci_trace_a.json /tmp/proof_ci_trace_b.json
python3 - <<'EOF'
import json
doc = json.load(open("/tmp/proof_ci_trace_a.json"))
events = doc["traceEvents"]
assert events, "empty trace"
cats = {e["cat"] for e in events}
assert {"pipeline", "kernel", "backend_layer"} <= cats, cats
print(f"  trace OK: {len(events)} events, cats {sorted(cats)}")
EOF
rm -f /tmp/proof_ci_trace_a.json /tmp/proof_ci_trace_b.json

echo "==> proof serve smoke test (healthz + prometheus metrics)"
serve_log="$(mktemp)"
./target/release/proof serve --addr 127.0.0.1:0 --workers 1 >"$serve_log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
    grep -q "listening on" "$serve_log" && break
    sleep 0.1
done
serve_addr="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$serve_log" | head -n1)"
curl -sf "http://${serve_addr}/healthz" | grep -q '"ok"'
prom="$(curl -sf "http://${serve_addr}/metrics?format=prometheus")"
grep -q "^# TYPE proof_serve_http_requests_total counter" <<<"$prom"
grep -q "^proof_serve_queue_capacity " <<<"$prom"
grep -q "^proof_serve_stage_compile_us_count " <<<"$prom"
kill "$serve_pid" 2>/dev/null || true
trap - EXIT
rm -f "$serve_log"

echo "==> proof serve robustness smoke (fault injection, 429 backpressure, counters)"
# tiny queue + deterministic fault plan: jobs seeded 31337 panic at the
# compile stage, jobs seeded 41414 stall 1500 ms at the metrics stage
serve_log="$(mktemp)"
# stderr goes to the log too: the injected panic's backtrace is expected
PROOF_FAULT="compile:panic@31337;metrics:stall:1500@41414" \
    ./target/release/proof serve --addr 127.0.0.1:0 --workers 1 --queue-cap 1 >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
    grep -q "listening on" "$serve_log" && break
    sleep 0.1
done
serve_addr="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$serve_log" | head -n1)"

# a panicking stage fails its job; the daemon survives
poison_id="$(curl -sf -X POST "http://${serve_addr}/jobs" \
    -d '{"model":"mobilenetv2-0.5","hardware":"a100","batch":1,"seed":31337}' \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')"
for _ in $(seq 100); do
    poison_status="$(curl -sf "http://${serve_addr}/jobs/${poison_id}" \
        | python3 -c 'import json,sys; print(json.load(sys.stdin)["status"])')"
    [ "$poison_status" = failed ] && break
    sleep 0.1
done
[ "$poison_status" = failed ] || { echo "expected panicked job to be failed, got ${poison_status}"; exit 1; }
curl -sf "http://${serve_addr}/jobs/${poison_id}" | grep -q "injected fault"
curl -sf "http://${serve_addr}/healthz" | grep -q '"ok"'

# stall the single worker, fill the 1-deep queue, and the next submission
# must bounce with 429 + Retry-After
curl -sf -X POST "http://${serve_addr}/jobs" \
    -d '{"model":"mobilenetv2-0.5","hardware":"a100","batch":1,"seed":41414}' >/dev/null
sleep 0.3   # let the worker dequeue the stalling job
curl -sf -X POST "http://${serve_addr}/jobs" \
    -d '{"model":"mobilenetv2-0.5","hardware":"a100","batch":2,"seed":1}' >/dev/null
reject="$(curl -s -i -X POST "http://${serve_addr}/jobs" \
    -d '{"model":"mobilenetv2-0.5","hardware":"a100","batch":4,"seed":2}')"
grep -q "^HTTP/1.1 429 " <<<"$reject"
grep -qi "^Retry-After: " <<<"$reject"

# the hardening counters are exposed under the proof_serve_ prefix
prom="$(curl -sf "http://${serve_addr}/metrics?format=prometheus")"
grep -q "^proof_serve_retries_total " <<<"$prom"
grep -q "^proof_serve_timeouts_total " <<<"$prom"
grep -q "^proof_serve_panics_total " <<<"$prom"
grep -q "^proof_serve_rejected_total 1$" <<<"$prom"
grep -q "^proof_serve_jobs_failed_total 1$" <<<"$prom"
kill "$serve_pid" 2>/dev/null || true
trap - EXIT
rm -f "$serve_log"

echo "==> proof fleet smoke (two daemons, merged sweep byte-identical to single-node)"
log_a="$(mktemp)"; log_b="$(mktemp)"
./target/release/proof serve --addr 127.0.0.1:0 --workers 1 >"$log_a" 2>&1 &
pid_a=$!
./target/release/proof serve --addr 127.0.0.1:0 --workers 1 >"$log_b" 2>&1 &
pid_b=$!
trap 'kill "$pid_a" "$pid_b" 2>/dev/null || true' EXIT
for log in "$log_a" "$log_b"; do
    for _ in $(seq 50); do
        grep -q "listening on" "$log" && break
        sleep 0.1
    done
done
addr_a="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_a" | head -n1)"
addr_b="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_b" | head -n1)"

fleet_spec=(--models mobilenetv2-0.5 --platforms a100 --batches 1,2 --seed 7)
./target/release/proof fleet sweep --nodes "${addr_a},${addr_b}" "${fleet_spec[@]}" \
    --out /tmp/proof_ci_fleet_a.json --metrics-out /tmp/proof_ci_fleet_m.json 2>/dev/null
./target/release/proof fleet sweep --in-process "${fleet_spec[@]}" \
    --out /tmp/proof_ci_fleet_b.json 2>/dev/null
cmp /tmp/proof_ci_fleet_a.json /tmp/proof_ci_fleet_b.json
kill "$pid_a" "$pid_b" 2>/dev/null || true
trap - EXIT
rm -f "$log_a" "$log_b"

echo "==> proof fleet fault smoke (one panicking daemon, sweep reschedules and still matches)"
# daemon A panics at the compile stage for every job of this sweep's seed;
# the coordinator must shift A's shards to the clean daemon B and the
# merged artifact must not change by a byte
log_a="$(mktemp)"; log_b="$(mktemp)"
PROOF_FAULT="compile:panic@7" \
    ./target/release/proof serve --addr 127.0.0.1:0 --workers 1 >"$log_a" 2>&1 &
pid_a=$!
./target/release/proof serve --addr 127.0.0.1:0 --workers 1 >"$log_b" 2>&1 &
pid_b=$!
trap 'kill "$pid_a" "$pid_b" 2>/dev/null || true' EXIT
for log in "$log_a" "$log_b"; do
    for _ in $(seq 50); do
        grep -q "listening on" "$log" && break
        sleep 0.1
    done
done
addr_a="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_a" | head -n1)"
addr_b="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_b" | head -n1)"

./target/release/proof fleet sweep --nodes "${addr_a},${addr_b}" "${fleet_spec[@]}" \
    --out /tmp/proof_ci_fleet_f.json --metrics-out /tmp/proof_ci_fleet_fm.json 2>/dev/null
cmp /tmp/proof_ci_fleet_f.json /tmp/proof_ci_fleet_b.json
python3 - <<'EOF'
import json
m = json.load(open("/tmp/proof_ci_fleet_fm.json"))
resched = m["counters"]["fleet_rescheduled"]
assert resched > 0, f"expected rescheduling off the panicking daemon, counters: {m['counters']}"
assert m["counters"]["fleet_completed"] == 2, m["counters"]
print(f"  fleet fault OK: {resched} reschedule(s), counters {m['counters']}")
EOF
kill "$pid_a" "$pid_b" 2>/dev/null || true
trap - EXIT
rm -f "$log_a" "$log_b" /tmp/proof_ci_fleet_a.json /tmp/proof_ci_fleet_b.json \
    /tmp/proof_ci_fleet_f.json /tmp/proof_ci_fleet_m.json /tmp/proof_ci_fleet_fm.json

echo "==> proof fleet warm-peer cache smoke (fresh node served from a warm peer's cache)"
# warm a two-daemon fleet (publish-on-build leaves both nodes holding both
# cells), kill one node, bring up a cold replacement, and re-run the sweep
# through the coordinator: the fresh node must serve its shard from the
# surviving warm peer (remote-tier hits > 0) and the merged artifact must
# stay byte-identical to the single-node reference
log_a="$(mktemp)"; log_b="$(mktemp)"; log_c="$(mktemp)"; log_f="$(mktemp)"
./target/release/proof serve --addr 127.0.0.1:0 --workers 1 >"$log_a" 2>&1 &
pid_a=$!
./target/release/proof serve --addr 127.0.0.1:0 --workers 1 >"$log_b" 2>&1 &
pid_b=$!
trap 'kill "$pid_a" "$pid_b" 2>/dev/null || true' EXIT
for log in "$log_a" "$log_b"; do
    for _ in $(seq 50); do
        grep -q "listening on" "$log" && break
        sleep 0.1
    done
done
addr_a="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_a" | head -n1)"
addr_b="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_b" | head -n1)"

./target/release/proof fleet sweep --nodes "${addr_a},${addr_b}" "${fleet_spec[@]}" \
    --out /tmp/proof_ci_cache_warm.json 2>/dev/null
./target/release/proof fleet sweep --in-process "${fleet_spec[@]}" \
    --out /tmp/proof_ci_cache_ref.json 2>/dev/null
cmp /tmp/proof_ci_cache_warm.json /tmp/proof_ci_cache_ref.json

kill "$pid_a" 2>/dev/null || true
./target/release/proof serve --addr 127.0.0.1:0 --workers 1 >"$log_c" 2>&1 &
pid_c=$!
trap 'kill "$pid_a" "$pid_b" "$pid_c" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
    grep -q "listening on" "$log_c" && break
    sleep 0.1
done
addr_c="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_c" | head -n1)"

./target/release/proof fleet serve --addr 127.0.0.1:0 --nodes "${addr_c},${addr_b}" >"$log_f" 2>&1 &
pid_f=$!
trap 'kill "$pid_a" "$pid_b" "$pid_c" "$pid_f" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
    grep -q "coordinating" "$log_f" && break
    sleep 0.1
done
coord_addr="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_f" | head -n1)"

curl -sf -X POST "http://${coord_addr}/grid" \
    -d '{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2],"seed":7}' \
    -o /tmp/proof_ci_cache_fresh.json
cmp /tmp/proof_ci_cache_fresh.json /tmp/proof_ci_cache_ref.json
curl -sf "http://${coord_addr}/metrics?format=prometheus" -o /tmp/proof_ci_cache_prom.txt
python3 - <<'EOF'
hits = None
for line in open("/tmp/proof_ci_cache_prom.txt"):
    if line.startswith("proof_fleet_fleet_cache_remote_hits "):
        hits = int(float(line.split()[1]))
assert hits is not None, "fleet_cache_remote_hits missing from prometheus export"
assert hits > 0, "fresh node never hit the warm peer's cache"
print(f"  warm-peer cache OK: {hits} remote-tier hit(s)")
EOF
kill "$pid_b" "$pid_c" "$pid_f" 2>/dev/null || true
trap - EXIT
rm -f "$log_a" "$log_b" "$log_c" "$log_f" /tmp/proof_ci_cache_warm.json \
    /tmp/proof_ci_cache_ref.json /tmp/proof_ci_cache_fresh.json /tmp/proof_ci_cache_prom.txt

echo "==> proof fleet trace smoke (merged cross-node trace, byte-reproducible)"
# each run gets its own pair of fresh single-worker daemons (cold caches
# and sequential execution keep each node's span structure deterministic);
# the merged fleet trace must carry spans from both node tracks and
# reproduce byte-for-byte across two runs of the same spec/seed/topology
run_fleet_trace() {
    out="$1"
    log_a="$(mktemp)"; log_b="$(mktemp)"
    ./target/release/proof serve --addr 127.0.0.1:0 --workers 1 >"$log_a" 2>&1 &
    pid_a=$!
    ./target/release/proof serve --addr 127.0.0.1:0 --workers 1 >"$log_b" 2>&1 &
    pid_b=$!
    trap 'kill "$pid_a" "$pid_b" 2>/dev/null || true' EXIT
    for log in "$log_a" "$log_b"; do
        for _ in $(seq 50); do
            grep -q "listening on" "$log" && break
            sleep 0.1
        done
    done
    addr_a="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_a" | head -n1)"
    addr_b="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_b" | head -n1)"
    ./target/release/proof fleet sweep --nodes "${addr_a},${addr_b}" "${fleet_spec[@]}" \
        --out /dev/null --trace-out "$out" 2>/dev/null
    kill "$pid_a" "$pid_b" 2>/dev/null || true
    trap - EXIT
    rm -f "$log_a" "$log_b"
}
run_fleet_trace /tmp/proof_ci_fleet_t1.json
run_fleet_trace /tmp/proof_ci_fleet_t2.json
python3 - <<'EOF'
import json
doc = json.load(open("/tmp/proof_ci_fleet_t1.json"))
events = doc["traceEvents"]
names = {e["name"] for e in events}
assert "fleet_run" in names and "fleet_shard" in names, sorted(names)
pids = {e["pid"] for e in events}
assert {1, 2, 3} <= pids, f"expected coordinator + two node tracks, got pids {sorted(pids)}"
run = next(e for e in events if e["name"] == "fleet_run")
shards = [e for e in events if e["name"] == "fleet_shard"]
assert shards and all(s["args"]["parent"] == run["args"]["span"] for s in shards)
jobs = [e for e in events if e["name"] == "job"]
assert len(jobs) == 2 and {j["pid"] for j in jobs} == {2, 3}, jobs
print(f"  fleet trace OK: {len(events)} spans across {len(pids)} tracks")
EOF
cmp /tmp/proof_ci_fleet_t1.json /tmp/proof_ci_fleet_t2.json
rm -f /tmp/proof_ci_fleet_t1.json /tmp/proof_ci_fleet_t2.json

echo "==> proof fleet heterogeneous smoke (weighted scheduler favours the fast node)"
# fast daemon: 2 workers, no faults; slow daemon: 1 worker, every shard
# stalls 600 ms at the metrics stage. Under --sched weighted the EWMA and
# the advertised worker count must route most of the sweep to the fast
# daemon — and the merged artifact must still match the in-process
# reference byte-for-byte (scheduling never touches artifact bytes)
log_a="$(mktemp)"; log_b="$(mktemp)"
./target/release/proof serve --addr 127.0.0.1:0 --workers 2 >"$log_a" 2>&1 &
pid_a=$!
PROOF_FAULT="metrics:stall:600" \
    ./target/release/proof serve --addr 127.0.0.1:0 --workers 1 >"$log_b" 2>&1 &
pid_b=$!
trap 'kill "$pid_a" "$pid_b" 2>/dev/null || true' EXIT
for log in "$log_a" "$log_b"; do
    for _ in $(seq 50); do
        grep -q "listening on" "$log" && break
        sleep 0.1
    done
done
addr_a="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_a" | head -n1)"
addr_b="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_b" | head -n1)"

hetero_spec=(--models mobilenetv2-0.5 --platforms a100 --batches 1,2,3,4,5,6,7,8,9,10 --seed 23)
./target/release/proof fleet sweep --nodes "${addr_a},${addr_b}" --sched weighted "${hetero_spec[@]}" \
    --out /tmp/proof_ci_hetero.json --metrics-out /tmp/proof_ci_hetero_m.json 2>/dev/null
./target/release/proof fleet sweep --in-process "${hetero_spec[@]}" \
    --out /tmp/proof_ci_hetero_ref.json 2>/dev/null
cmp /tmp/proof_ci_hetero.json /tmp/proof_ci_hetero_ref.json
python3 - <<'EOF'
import json
m = json.load(open("/tmp/proof_ci_hetero_m.json"))
fast, slow = m["nodes"][0], m["nodes"][1]
assert fast["completed"] + slow["completed"] == 10, m["nodes"]
assert fast["completed"] > slow["completed"], \
    f"weighted dispatch did not favour the fast node: {m['nodes']}"
picks = m["counters"]["fleet_weighted_picks"]
assert picks >= 10, f"expected every dispatch through the weighted picker, counters: {m['counters']}"
print(f"  hetero fleet OK: fast {fast['completed']}, slow {slow['completed']}, {picks} weighted pick(s)")
EOF
kill "$pid_a" "$pid_b" 2>/dev/null || true
trap - EXIT
rm -f "$log_a" "$log_b" /tmp/proof_ci_hetero.json /tmp/proof_ci_hetero_m.json \
    /tmp/proof_ci_hetero_ref.json

echo "==> proof fleet streaming smoke (async submit, live status, byte-identical result)"
# two single-worker daemons, every shard stalled 400 ms at the metrics
# stage: the 6-shard sweep takes over a second, long enough to observe the
# run mid-flight — result answering 202 while status already shows partial
# completions — before comparing the finished artifact against --in-process
log_a="$(mktemp)"; log_b="$(mktemp)"; log_f="$(mktemp)"
PROOF_FAULT="metrics:stall:400" \
    ./target/release/proof serve --addr 127.0.0.1:0 --workers 1 >"$log_a" 2>&1 &
pid_a=$!
PROOF_FAULT="metrics:stall:400" \
    ./target/release/proof serve --addr 127.0.0.1:0 --workers 1 >"$log_b" 2>&1 &
pid_b=$!
trap 'kill "$pid_a" "$pid_b" 2>/dev/null || true' EXIT
for log in "$log_a" "$log_b"; do
    for _ in $(seq 50); do
        grep -q "listening on" "$log" && break
        sleep 0.1
    done
done
addr_a="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_a" | head -n1)"
addr_b="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_b" | head -n1)"

./target/release/proof fleet serve --addr 127.0.0.1:0 --nodes "${addr_a},${addr_b}" >"$log_f" 2>&1 &
pid_f=$!
trap 'kill "$pid_a" "$pid_b" "$pid_f" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
    grep -q "coordinating" "$log_f" && break
    sleep 0.1
done
coord_addr="$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log_f" | head -n1)"

stream_spec='{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2,3,4,6,8],"seed":97}'
run_id="$(curl -sf -X POST "http://${coord_addr}/grid/submit" -d "$stream_spec" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["run_id"])')"

# the run streams: at some poll the result endpoint must still answer 202
# while the status endpoint already reports completed > 0
saw_partial=0
code=000
for _ in $(seq 200); do
    code="$(curl -s -o /dev/null -w '%{http_code}' "http://${coord_addr}/grid/${run_id}/result")"
    [ "$code" = 200 ] && break
    completed="$(curl -sf "http://${coord_addr}/grid/${run_id}/status" \
        | python3 -c 'import json,sys; print(json.load(sys.stdin)["completed"])')"
    if [ "$code" = 202 ] && [ "$completed" -gt 0 ]; then
        saw_partial=1
        # the whole read surface answers mid-run, alive included
        curl -sf "http://${coord_addr}/healthz" | python3 -c \
            'import json,sys; h=json.load(sys.stdin); assert "alive" in h and h["running"] is True, h'
        curl -sf "http://${coord_addr}/nodes" >/dev/null
        break
    fi
    sleep 0.1
done
[ "$saw_partial" = 1 ] || { echo "never observed a partial streaming run (last result status ${code})"; exit 1; }

# drain the run and compare bytes against the in-process reference
for _ in $(seq 600); do
    code="$(curl -s -o /tmp/proof_ci_stream.json -w '%{http_code}' "http://${coord_addr}/grid/${run_id}/result")"
    [ "$code" = 200 ] && break
    sleep 0.1
done
[ "$code" = 200 ] || { echo "streaming run never finished (last result status ${code})"; exit 1; }
./target/release/proof fleet sweep --in-process \
    --models mobilenetv2-0.5 --platforms a100 --batches 1,2,3,4,6,8 --seed 97 \
    --out /tmp/proof_ci_stream_ref.json 2>/dev/null
cmp /tmp/proof_ci_stream.json /tmp/proof_ci_stream_ref.json
curl -sf "http://${coord_addr}/healthz" | python3 -c \
    'import json,sys; h=json.load(sys.stdin); assert h["runs_total"] >= 1 and h["running"] is False, h; print("  streaming OK: %d run(s), alive %d" % (h["runs_total"], h["alive"]))'
kill "$pid_a" "$pid_b" "$pid_f" 2>/dev/null || true
trap - EXIT
rm -f "$log_a" "$log_b" "$log_f" /tmp/proof_ci_stream.json /tmp/proof_ci_stream_ref.json

echo "CI OK"
